"""Command-line interface.

The subcommands cover the common standalone uses of the library::

    repro corpus   --docs 1000000                 # corpus statistics
    repro trace    --requests 50000 --out t.spc   # synthetic trace + analysis
    repro analyze  t.spc --format spc             # analyze an existing trace
    repro run      --policy cbslru --queries 5000 # full cached retrieval run
    repro run      ... --telemetry out/           # + spans, metrics, audit dump
    repro run      ... --telemetry out/ --timeline  # + windowed time series
    repro report   out/                           # re-read a telemetry dir
    repro timeline out/                           # sparklines + SLO verdicts
    repro explain  out/ --term 123                # why is term 123 (not) on SSD?
    repro explain  out/ --query 17                # trace a tail latency exemplar
    repro compare  --queries 5000                 # all policies side by side
    repro compare  out-a/ out-b/                  # compare saved telemetry dirs
    repro bench    --suite smoke                  # deterministic benchmark run
    repro bench    --suite smoke --against BENCH_0004.json  # regression gate
    repro profile  --suite smoke --top 15         # host wall-clock scoreboard
    repro profile  --folded profile.folded --out profile.json  # flamegraph data

Install exposes ``repro`` as a console entry point; ``python -m
repro.cli`` works without installation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table

__all__ = ["main", "build_parser"]

MB = 1024 * 1024


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD-based hybrid storage architecture for search engines "
                    "(ICPP 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="generate and summarise a synthetic corpus")
    p.add_argument("--docs", type=int, default=1_000_000)
    p.add_argument("--vocab", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("trace", help="generate a synthetic web-search trace")
    p.add_argument("--requests", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--out", type=str, default=None,
                   help="write the trace (format by extension: .spc, .csv "
                        "(MSR), .dmn (DiskMon))")

    p = sub.add_parser("analyze", help="analyze an I/O trace file")
    p.add_argument("path", type=str)
    p.add_argument("--format", choices=("spc", "msr", "diskmon"), default="spc")

    p = sub.add_parser("run", help="run a cached retrieval experiment")
    p.add_argument("--policy", choices=("lru", "cblru", "cbslru"),
                   default="cbslru")
    p.add_argument("--docs", type=int, default=1_000_000)
    p.add_argument("--queries", type=int, default=4_000)
    p.add_argument("--mem-mb", type=int, default=16)
    p.add_argument("--ssd-mb", type=int, default=64)
    p.add_argument("--ttl-ms", type=float, default=0.0,
                   help="dynamic scenario: data TTL in milliseconds (0=static)")
    p.add_argument("--three-level", action="store_true",
                   help="enable the intersection cache (Long & Suel [19])")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--arrival", choices=("closed", "poisson", "diurnal"),
                   default="closed",
                   help="arrival process: closed-loop replay (default) or "
                        "open-loop Poisson/diurnal arrivals on the "
                        "discrete-event kernel")
    p.add_argument("--concurrency", type=int, default=1,
                   help="max in-flight queries (closed: number of "
                        "closed-loop clients; open-loop: admission limit)")
    p.add_argument("--rate-qps", type=float, default=None,
                   help="offered arrival rate (poisson) or peak rate "
                        "(diurnal); required for open-loop arrivals")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission wait-queue bound; arrivals beyond "
                        "concurrency + max-queue are shed (open-loop)")
    p.add_argument("--cpu-lanes", type=int, default=1,
                   help="CPU units per server for the kernel's scoring "
                        "resource")
    p.add_argument("--diurnal-period-s", type=float, default=10.0,
                   help="compressed diurnal cycle length in simulated "
                        "seconds")
    p.add_argument("--diurnal-floor", type=float, default=0.2,
                   help="night-time rate as a fraction of the peak")
    p.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                   help="collect spans + metrics and write them to DIR "
                        "(spans.jsonl, metrics.json, metrics.prom)")
    p.add_argument("--timeline", action="store_true",
                   help="stream windowed time series to DIR/timeline.jsonl "
                        "(requires --telemetry)")
    p.add_argument("--window-ms", type=float, default=50.0,
                   help="timeline window width in virtual-clock "
                        "milliseconds (default 50)")
    p.add_argument("--max-windows", type=int, default=None, metavar="N",
                   help="rotate DIR/timeline.jsonl after N streamed "
                        "windows (bounds on-disk growth; one .1 "
                        "generation is kept; requires --timeline)")
    p.add_argument("--max-blame-records", type=int, default=None,
                   metavar="N",
                   help="rotate DIR/blame.jsonl after N streamed records")
    p.add_argument("--live-port", type=int, default=None, metavar="PORT",
                   help="serve the live observability plane on PORT "
                        "while the run executes (/metrics OpenMetrics "
                        "scrape, /windows stream, /status; requires "
                        "--timeline)")
    p.add_argument("--no-flight", action="store_true",
                   help="disable the flight recorder (kernel-mode runs "
                        "with --timeline arm it by default)")
    p.add_argument("--incident-severity", choices=("warn", "critical"),
                   default="critical",
                   help="anomaly severity that opens an incident bundle "
                        "(default critical)")

    p = sub.add_parser("report",
                       help="print the per-stage breakdown of a telemetry dir")
    p.add_argument("dir", type=str,
                   help="directory written by `repro run --telemetry`")
    p.add_argument("--format", choices=("text", "openmetrics"),
                   default="text",
                   help="'openmetrics' dumps the metrics snapshot as "
                        "OpenMetrics text exposition instead of the "
                        "human report")

    p = sub.add_parser("timeline",
                       help="render a timeline.jsonl as sparkline charts "
                            "with SLO verdicts and anomalies")
    p.add_argument("path", type=str,
                   help="telemetry dir (timeline.jsonl inside) or a "
                        "timeline.jsonl file")
    p.add_argument("--series", action="append", default=None,
                   help="series to chart (repeatable; default: every "
                        "derived series with data)")
    p.add_argument("--slo", action="append", default=None, metavar="SPEC",
                   help="SLO spec like 'p99_response_us < 100000 @ 95%%' "
                        "(repeatable; default: the built-in set)")
    p.add_argument("--width", type=int, default=60,
                   help="sparkline width in characters")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero when an SLO is violated or a "
                        "critical anomaly fires")

    p = sub.add_parser("blame",
                       help="per-query critical-path attribution and "
                            "capacity model from a kernel run's blame "
                            "records")
    p.add_argument("path", type=str,
                   help="telemetry dir (blame.jsonl inside) or a "
                        "blame.jsonl file")
    p.add_argument("--tail-pct", type=float, default=99.0,
                   help="percentile cut for the tail cohort (default 99)")
    p.add_argument("--query", type=int, default=None, metavar="QID",
                   help="also print one query's full decomposition "
                        "(by qid tag, falling back to task name q<QID>)")
    p.add_argument("--top", type=int, default=5,
                   help="slowest queries to list individually (default 5)")

    p = sub.add_parser("explain",
                       help="reconstruct one subject's decision history from "
                            "an audit trail")
    p.add_argument("path", type=str,
                   help="telemetry dir (audit.jsonl inside) or an audit.jsonl "
                        "file")
    g = p.add_mutually_exclusive_group(required=True)
    g.add_argument("--term", type=int, default=None,
                   help="explain an inverted list by term id")
    g.add_argument("--rb", type=int, default=None,
                   help="explain an SSD result block by RB id")
    g.add_argument("--gc-block", type=int, default=None,
                   help="explain a flash block's GC victim selections")
    g.add_argument("--query", type=int, default=None,
                   help="trace a tail-latency exemplar for this query id "
                        "(needs a dir written with --timeline)")
    g.add_argument("--incident", type=int, default=None, metavar="N",
                   help="walk flight-recorder incident bundle N end to "
                        "end (trigger, SLO state, blame, evidence)")
    p.add_argument("--at-us", type=float, default=None,
                   help="reconstruct state as of this virtual-clock time")

    p = sub.add_parser("top",
                       help="run dashboard: sparklines, SLO status and "
                            "incidents from a live port or a telemetry "
                            "dir")
    p.add_argument("target", type=str,
                   help="live plane (PORT or HOST:PORT from `repro run "
                        "--live-port`) or a finished telemetry dir")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (CI-friendly)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh interval in seconds (default 2)")
    p.add_argument("--width", type=int, default=60,
                   help="sparkline width in characters")

    p = sub.add_parser("incidents",
                       help="list and validate flight-recorder incident "
                            "bundles under a telemetry dir")
    p.add_argument("dir", type=str)
    p.add_argument("--require", type=int, default=None, metavar="N",
                   help="exit non-zero unless at least N valid bundles "
                        "are present")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document")

    p = sub.add_parser("compare",
                       help="run all three policies and emit a markdown "
                            "report (or compare saved telemetry dirs)")
    p.add_argument("dirs", nargs="*", default=[],
                   help="telemetry dirs to compare instead of running "
                        "the policies")
    p.add_argument("--docs", type=int, default=1_000_000)
    p.add_argument("--queries", type=int, default=4_000)
    p.add_argument("--mem-mb", type=int, default=16)
    p.add_argument("--ssd-mb", type=int, default=64)
    p.add_argument("--out", type=str, default=None,
                   help="write the report to a file")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document instead of "
                        "markdown")
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("bench",
                       help="run a deterministic benchmark suite and emit "
                            "BENCH_<n>.json")
    p.add_argument("--suite", choices=("smoke", "full", "saturation"),
                   default="smoke")
    p.add_argument("--out", type=str, default=None,
                   help="output path (default: next free BENCH_<n>.json)")
    p.add_argument("--against", type=str, default=None, metavar="PREV.json",
                   help="gate against a previous BENCH document; exits "
                        "non-zero on regression")

    p = sub.add_parser("profile",
                       help="profile host wall-clock time over a bench "
                            "suite's closed-loop scenarios")
    p.add_argument("--suite", choices=("smoke", "full", "saturation"),
                   default="smoke")
    p.add_argument("--top", type=int, default=15,
                   help="functions to keep in the top-N table")
    p.add_argument("--folded", type=str, default=None, metavar="PATH",
                   help="write Brendan-Gregg collapsed stacks to PATH "
                        "(render with flamegraph.pl or speedscope)")
    p.add_argument("--out", type=str, default=None, metavar="PATH",
                   help="write the repro.obs.profile/v1 JSON summary to PATH")
    p.add_argument("--json", action="store_true",
                   help="print the JSON summary instead of the scoreboard")
    p.add_argument("--no-obs-tax", action="store_true",
                   help="skip the extra telemetry-off run that measures "
                        "observability overhead")
    p.add_argument("--against", type=str, default=None, metavar="BENCH.json",
                   help="print a before/after wall_ns_per_op delta table "
                        "against a recorded BENCH document's host blocks")
    return parser


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.engine.corpus import CorpusConfig, build_corpus_stats
    from repro.engine.postings import POSTING_BYTES

    stats = build_corpus_stats(
        CorpusConfig(num_docs=args.docs, vocab_size=args.vocab,
                     avg_doc_len=300, seed=args.seed)
    )
    sizes = stats.doc_freqs * POSTING_BYTES
    rows = [
        ["documents", f"{args.docs:,}"],
        ["vocabulary", f"{args.vocab:,}"],
        ["index size", f"{sizes.sum() / 1e6:.1f} MB"],
        ["largest list", f"{sizes.max() / 1024:.0f} KB"],
        ["median list", f"{np.median(sizes) / 1024:.1f} KB"],
        ["mean utilization", f"{stats.utilization.mean():.1%}"],
    ]
    print(format_table(["metric", "value"], rows, title="corpus statistics"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.analyzer import analyze_trace
    from repro.trace.generator import WebSearchTraceConfig, generate_websearch_trace

    trace = generate_websearch_trace(
        WebSearchTraceConfig(num_requests=args.requests, seed=args.seed)
    )
    print(analyze_trace(trace).summary())
    if args.out:
        _write_by_extension(trace, args.out)
        print(f"wrote {len(trace)} requests to {args.out}")
    return 0


def _write_by_extension(trace, path: str) -> None:
    from repro.trace.diskmon import write_diskmon
    from repro.trace.msr import write_msr
    from repro.trace.umass import write_spc

    if path.endswith(".spc"):
        write_spc(trace, path)
    elif path.endswith(".csv"):
        write_msr(trace, path)
    elif path.endswith(".dmn"):
        write_diskmon(trace, path)
    else:
        raise SystemExit(f"unknown trace extension on {path!r} "
                         "(want .spc, .csv or .dmn)")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.trace.analyzer import analyze_trace
    from repro.trace.diskmon import parse_diskmon
    from repro.trace.msr import parse_msr
    from repro.trace.umass import parse_spc

    parsers = {"spc": parse_spc, "msr": parse_msr, "diskmon": parse_diskmon}
    trace = parsers[args.format](args.path)
    print(analyze_trace(trace).summary())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.timeline and not args.telemetry:
        print("error: --timeline requires --telemetry DIR", file=sys.stderr)
        return 2
    if not args.timeline and (args.live_port is not None
                              or args.max_windows is not None):
        print("error: --live-port/--max-windows require --timeline",
              file=sys.stderr)
        return 2
    telemetry = None
    if args.telemetry:
        import os

        from repro.obs import Telemetry

        telemetry = Telemetry()
        # Stream spans to disk as they finish instead of accumulating
        # them in memory — an arbitrarily long run holds zero spans.
        os.makedirs(args.telemetry, exist_ok=True)
        telemetry.tracer.open_stream(os.path.join(args.telemetry,
                                                  "spans.jsonl"))
        # Kernel blame records stream the same way once a kernel is
        # observed; closed-loop concurrency-1 runs have no kernel and
        # simply never open the file.
        telemetry.stream_blame(os.path.join(args.telemetry, "blame.jsonl"),
                               max_records=args.max_blame_records)
        if args.timeline:
            # Windows stream the same way: each one is written the
            # moment it closes.
            telemetry.attach_timeline(
                window_us=args.window_ms * 1000.0,
                stream_path=os.path.join(args.telemetry, "timeline.jsonl"),
                max_windows=args.max_windows,
            )

    # Kernel-mode runs with a timeline arm the flight recorder: a
    # black-box ring over the run that dumps incident-<n>/ bundles when
    # a streaming detector fires at trigger severity.
    flight = None
    kernel_mode = args.arrival != "closed" or args.concurrency > 1
    if (telemetry is not None and args.timeline and kernel_mode
            and not args.no_flight):
        from repro.obs import FlightRecorder

        flight = FlightRecorder(
            telemetry,
            out_dir=args.telemetry,
            trigger_severity=args.incident_severity,
            config={
                "policy": args.policy, "docs": args.docs,
                "queries": args.queries, "mem_mb": args.mem_mb,
                "ssd_mb": args.ssd_mb, "arrival": args.arrival,
                "rate_qps": args.rate_qps,
                "concurrency": args.concurrency,
                "max_queue": args.max_queue, "seed": args.seed,
                "window_ms": args.window_ms,
            },
        ).arm()

    live = None
    if args.live_port is not None:
        from repro.obs import LiveServer

        # Started after flight.arm() so the recorder's window callback
        # runs first and the server can reuse its evaluator state.
        live = LiveServer(
            telemetry, port=args.live_port, flight=flight,
            run_info={"policy": args.policy, "arrival": args.arrival,
                      "dir": args.telemetry},
        ).start()
        print(f"live plane at {live.url()} (/metrics /windows /status)")
    try:
        return _run_serve_and_report(args, telemetry, flight)
    finally:
        if live is not None:
            live.close()


def _run_serve_and_report(args: argparse.Namespace, telemetry,
                          flight) -> int:
    from repro.core.config import CacheConfig, Policy
    from repro.core.intersections import ThreeLevelCacheManager
    from repro.core.manager import CacheManager, build_hierarchy_for
    from repro.workloads.sweep import make_log_for, make_scaled_index

    index = make_scaled_index(args.docs)
    log = make_log_for(args.queries, seed=args.seed)
    cfg = CacheConfig.paper_split(
        args.mem_mb * MB, args.ssd_mb * MB,
        policy=Policy(args.policy),
        ttl_us=args.ttl_ms * 1000.0,
    )
    hierarchy = build_hierarchy_for(cfg, index)
    if args.three_level:
        manager: CacheManager = ThreeLevelCacheManager(
            cfg, hierarchy, index, telemetry=telemetry)
    else:
        manager = CacheManager(cfg, hierarchy, index, telemetry=telemetry)
    if cfg.policy is Policy.CBSLRU and cfg.uses_ssd:
        manager.warmup_static(log)

    if args.concurrency < 1:
        print("error: --concurrency must be >= 1", file=sys.stderr)
        return 2
    open_result = None
    if args.arrival == "closed" and args.concurrency == 1:
        # The seed's synchronous loop, byte-for-byte (golden parity).
        for query in log:
            manager.process_query(query)
    elif args.arrival == "closed":
        # N closed-loop clients: each issues its next query the moment
        # its previous one completes, contending through the kernel.
        from repro.sim.kernel import Kernel

        kernel = Kernel(manager.clock)
        manager.hierarchy.attach_kernel(kernel, cpu_lanes=args.cpu_lanes)
        if telemetry is not None:
            telemetry.observe_kernel(kernel)
        pending = iter(list(log))

        def client():
            for query in pending:
                manager.process_query(query)

        for i in range(args.concurrency):
            kernel.spawn(client, name=f"client{i}")
        try:
            kernel.run()
        finally:
            manager.clock.bind_kernel(None)
    else:
        from repro.workloads.openloop import (DiurnalArrivals,
                                              PoissonArrivals,
                                              run_open_loop)

        if args.rate_qps is None or args.rate_qps <= 0:
            print("error: open-loop arrivals need --rate-qps > 0",
                  file=sys.stderr)
            return 2
        if args.arrival == "poisson":
            arrivals = PoissonArrivals(args.rate_qps, seed=args.seed)
        else:
            arrivals = DiurnalArrivals(
                args.rate_qps, period_s=args.diurnal_period_s,
                floor_fraction=args.diurnal_floor, seed=args.seed)
        open_result = run_open_loop(
            manager, list(log), arrivals,
            concurrency=args.concurrency, max_queue=args.max_queue,
            cpu_lanes=args.cpu_lanes,
            label=f"{args.policy}-{args.arrival}",
        )

    stats = manager.stats
    rows = [
        ["queries", stats.queries],
        ["result hit ratio", f"{stats.result_hit_ratio:.1%}"],
        ["list hit ratio", f"{stats.list_hit_ratio:.1%}"],
        ["combined hit ratio", f"{stats.combined_hit_ratio:.1%}"],
        ["mean response", f"{stats.mean_response_us / 1000:.2f} ms"],
        ["throughput", f"{stats.throughput_qps:.1f} q/s"],
        ["SSD erasures", manager.ssd.erase_count if manager.ssd else 0],
    ]
    if args.ttl_ms > 0:
        rows.append(["expired (results/lists)",
                     f"{stats.expired_results}/{stats.expired_lists}"])
    if args.three_level:
        inter = manager.intersections  # type: ignore[attr-defined]
        rows.append(["intersection hits", inter.hits])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.policy.upper()} on {args.docs:,} docs"))
    if open_result is not None:
        r = open_result
        bottleneck = max(r.utilization, key=r.utilization.get, default=None)
        open_rows = [
            ["arrival process", r.arrival],
            ["offered rate", f"{r.offered_qps:.1f} q/s"],
            ["served throughput", f"{r.throughput_qps:.1f} q/s"],
            ["arrived / completed / shed",
             f"{r.arrived} / {r.completed} / {r.rejected}"],
            ["mean response", f"{r.mean_response_us / 1000:.2f} ms"],
            ["p99 / p999 response",
             f"{r.p99_us / 1000:.2f} / {r.p999_us / 1000:.2f} ms"],
            ["mean admission wait", f"{r.mean_wait_us / 1000:.2f} ms"],
            ["peak in-flight", r.peak_inflight],
        ]
        if bottleneck is not None:
            open_rows.append(
                ["bottleneck",
                 f"{bottleneck} ({r.utilization[bottleneck]:.0%} busy, "
                 f"peak queue {r.peak_resource_depth[bottleneck]})"])
        print()
        print(format_table(
            ["metric", "value"], open_rows,
            title=f"open-loop @ {r.offered_qps:g} q/s, "
                  f"concurrency {r.concurrency}"))
    if telemetry is not None:
        from repro.obs import format_stage_breakdown, write_telemetry_dir

        print()
        print(format_stage_breakdown(telemetry.registry,
                                     title="per-stage latency"))
        written = write_telemetry_dir(telemetry, args.telemetry)
        flash_rows = _flash_rows(telemetry.registry)
        if flash_rows:
            print()
            print(format_table(
                ["device", "erases", "WA", "free blocks", "wear skew",
                 "life used"],
                flash_rows, title="flash devices"))
        print(f"\nwrote {written['spans']} spans, {written['metrics']} "
              f"metrics and {written['audit_records']} audit records "
              f"to {args.telemetry}/")
        if written["dropped_spans"]:
            print(f"({written['dropped_spans']} spans dropped past the cap)")
        if written.get("blame_records"):
            print(f"blame: {written['blame_records']} kernel records -> "
                  f"{args.telemetry}/blame.jsonl "
                  f"(see `repro blame {args.telemetry}`)")
        if args.timeline:
            from repro.obs import steady_state_window

            timeline = telemetry.timeline
            steady = steady_state_window(timeline.windows)
            n_ex = len(telemetry.exemplars.exemplars)
            steady_txt = (f"steady from window {steady}"
                          if steady is not None else "no steady state")
            print(f"timeline: {timeline.emitted} windows x "
                  f"{args.window_ms:g} ms, {n_ex} exemplars, {steady_txt} "
                  f"-> {args.telemetry}/timeline.jsonl")
        if flight is not None:
            n = flight.finish()  # idempotent; write_telemetry_dir flushed
            if n:
                trig = flight.incidents[-1]["trigger"]
                print(f"flight recorder: {n} incident bundle(s) -> "
                      f"{args.telemetry}/incident-*/ (latest trigger "
                      f"[{trig['severity']}] {trig['detector']}; see "
                      f"`repro incidents {args.telemetry}`)")
            else:
                print("flight recorder: armed, no incidents")
    return 0


def _flash_rows(registry) -> list[list]:
    """One table row per flash device seen in the registry."""
    devices = sorted({
        tags["device"] for name, tags, _ in registry.items()
        if name == "flash_erases_total"
    })
    rows = []
    for dev in devices:
        def val(metric: str, default=0.0):
            inst = registry.get(metric, device=dev)
            return inst.value if inst is not None else default

        rows.append([
            dev,
            int(val("flash_erases_total")),
            f"{val('flash_write_amplification'):.2f}",
            int(val("flash_free_blocks")),
            f"{val('flash_wear_skew'):.2f}",
            f"{val('flash_lifetime_consumed'):.2%}",
        ])
    return rows


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.obs import (
        format_stage_breakdown,
        load_metrics_json,
        openmetrics_text,
        validate_telemetry_dir,
    )

    try:
        counts = validate_telemetry_dir(args.dir)
        snapshot = load_metrics_json(os.path.join(args.dir, "metrics.json"))
    except (ValueError, OSError) as exc:
        print(f"error: {args.dir}: not a usable telemetry directory ({exc})",
              file=sys.stderr)
        return 2
    if args.format == "openmetrics":
        sys.stdout.write(openmetrics_text(snapshot))
        return 0
    print(format_stage_breakdown(
        snapshot, title=f"per-stage latency ({args.dir})"))
    line = f"\n{counts['spans']} spans, {counts['metrics']} metrics"
    if "timeline_windows" in counts:
        line += (f", {counts['timeline_windows']} timeline windows "
                 f"(see `repro timeline {args.dir}`)")
    print(line)
    return 0


def _resolve_timeline_path(path: str) -> str:
    import os

    if os.path.isdir(path):
        return os.path.join(path, "timeline.jsonl")
    return path


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import (
        DEFAULT_SLOS,
        evaluate_slos,
        load_timeline_jsonl,
        parse_slo,
        run_detectors,
        sparkline,
        steady_state_window,
        window_series,
    )
    from repro.obs.timeline import DERIVED_SERIES

    path = _resolve_timeline_path(args.path)
    try:
        tl = load_timeline_jsonl(path)
    except (ValueError, OSError) as exc:
        print(f"error: {path}: not a usable timeline ({exc}); "
              f"record one with `repro run --telemetry DIR --timeline`",
              file=sys.stderr)
        return 2
    if not tl.windows:
        print(f"error: {path}: timeline holds no windows", file=sys.stderr)
        return 2

    first = tl.windows[0]["window"]
    last = tl.windows[-1]["window"]
    print(f"timeline: {len(tl.windows)} windows x {tl.window_us / 1000:g} ms "
          f"(windows {first}..{last}, {len(tl.exemplars)} exemplars)")
    steady = steady_state_window(tl.windows)
    if steady is not None:
        print(f"steady state from window {steady} "
              f"(t = {steady * tl.window_us / 1e6:.2f} s)")
    else:
        print("steady state: never reached")
    print()

    names = args.series or [s for s in DERIVED_SERIES
                            if window_series(tl.windows, s)]
    label_w = max((len(n) for n in names), default=0)
    for name in names:
        pts = window_series(tl.windows, name)
        if not pts:
            print(f"{name:<{label_w}}  (no data)")
            continue
        by_window = dict(pts)
        values = [by_window.get(w) for w in range(first, last + 1)]
        vals = [v for v in values if v is not None]
        print(f"{name:<{label_w}}  {sparkline(values, width=args.width)}  "
              f"min {min(vals):g}  max {max(vals):g}  last {vals[-1]:g}")
    print()

    try:
        slos = [parse_slo(s) for s in args.slo] if args.slo \
            else list(DEFAULT_SLOS)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = evaluate_slos(slos, tl.windows)
    print("SLOs:")
    for res in results:
        print(f"  {res.format()}")
    anomalies = run_detectors(tl.windows)
    if anomalies:
        # Critical anomalies always print; warnings are capped so a
        # noisy sparse run doesn't scroll the verdicts off the screen.
        critical = [a for a in anomalies if a.severity == "critical"]
        warns = [a for a in anomalies if a.severity != "critical"]
        shown = critical + warns[: max(0, 10 - len(critical))]
        print(f"anomalies: {len(anomalies)} "
              f"({len(critical)} critical, {len(warns)} warn)")
        for a in sorted(shown, key=lambda a: (a.window, a.detector)):
            print(f"  {a.format()}")
        if len(shown) < len(anomalies):
            print(f"  ... and {len(anomalies) - len(shown)} more")
    else:
        print("anomalies: none")

    if args.strict and (any(r.verdict == "violated" for r in results)
                        or any(a.severity == "critical" for a in anomalies)):
        return 1
    return 0


def _resolve_blame_path(path: str) -> str:
    import os

    if os.path.isdir(path):
        return os.path.join(path, "blame.jsonl")
    return path


def _load_blame_queries(path: str):
    """Load a blame file and assemble per-query decompositions.

    Returns ``(log, queries)`` or raises ValueError/OSError.
    """
    from repro.obs import assemble_queries, load_blame_jsonl

    log = load_blame_jsonl(path)
    return log, assemble_queries(log.records)


def _match_blame_query(queries, query_id: int):
    """Blame entries for one query id.

    The ``qid`` tag is authoritative — it is the same counter exemplars
    and spans carry.  The ``q<N>`` task name falls back for runs whose
    recorder predates tagging (shed arrivals offset names from qids).
    """
    match = [q for q in queries if q.qid == query_id]
    if not match:
        match = [q for q in queries
                 if q.qid is None and q.name == f"q{query_id}"]
    return match


def _cmd_blame(args: argparse.Namespace) -> int:
    from repro.obs import (
        blame_profiles,
        capacity_model,
        format_blame_report,
        format_query_blame,
    )

    path = _resolve_blame_path(args.path)
    try:
        log, queries = _load_blame_queries(path)
    except (ValueError, OSError) as exc:
        print(f"error: {path}: not a usable blame file ({exc}); record one "
              f"with `repro run --arrival poisson ... --telemetry DIR`",
              file=sys.stderr)
        return 2
    if not queries:
        print(f"error: {path}: no completed queries recorded",
              file=sys.stderr)
        return 2

    profiles = blame_profiles(queries, tail_pct=args.tail_pct)
    footer = log.footer or {}
    horizon = footer.get("end_us", 0.0) - footer.get("start_us", 0.0)
    completed = footer.get("completed", len(queries))
    capacity = capacity_model(log.resources, horizon, completed=completed)
    print(format_blame_report(queries, profiles, capacity))

    if args.top > 0:
        print(f"\nslowest {min(args.top, len(queries))} queries:")
        for q in sorted(queries, key=lambda q: -q.total_us)[:args.top]:
            wait = q.admission_wait_us + sum(q.wait_us.values())
            top_res = max(q.wait_us, key=q.wait_us.get, default=None)
            line = (f"  task {q.task} ({q.name}"
                    + (f", qid {q.qid}" if q.qid is not None else "")
                    + f"): {q.total_us / 1000:.2f} ms, "
                    f"{wait / q.total_us:.0%} waiting")
            if top_res is not None:
                line += f" (mostly {top_res})"
            if q.straggler:
                line += f", straggler {q.straggler}"
            print(line)

    if args.query is not None:
        match = _match_blame_query(queries, args.query)
        print()
        if not match:
            print(f"query {args.query}: no blame record (qid tag or task "
                  f"name q{args.query})")
            return 1
        for q in match:
            print(format_query_blame(q))
    if not capacity.get("little_law_ok", True):
        print("\nwarning: Little's-law self-check failed — the blame "
              "instrumentation disagrees with the kernel's depth "
              "accounting", file=sys.stderr)
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.report import policy_comparison_report
    from repro.core.config import CacheConfig, Policy
    from repro.obs import Telemetry, format_stage_comparison
    from repro.workloads.retrieval import run_cached
    from repro.workloads.sweep import make_log_for, make_scaled_index

    if args.dirs:
        return _compare_dirs(args)

    import time

    from repro.obs import HOT

    index = make_scaled_index(args.docs)
    log = make_log_for(args.queries, seed=args.seed)
    results = {}
    registries = {}
    timelines = {}
    host = {}
    for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(args.mem_mb * MB, args.ssd_mb * MB,
                                      policy=policy)
        tel = Telemetry(trace=False, audit=False)
        timeline = tel.attach_timeline(window_us=50_000.0)
        hot_before = HOT.snapshot()
        t0 = time.perf_counter()
        results[policy.value] = run_cached(
            index, log, cfg, static_analyze_queries=args.queries // 2,
            telemetry=tel,
        )
        wall = time.perf_counter() - t0
        host[policy.value] = {
            "wall_s": wall,
            "wall_us_per_query": wall * 1e6 / max(1, args.queries),
            "hot_ops": HOT.delta(hot_before),
        }
        timeline.finish()  # also samples the flash bridges (collect)
        registries[policy.value] = tel.registry
        timelines[policy.value] = list(timeline.windows)

    if args.json:
        import json

        payload = _compare_payload(results, registries)
        payload["timeline"] = _compare_timelines(timelines)
        payload["host"] = host
        report = json.dumps(payload, indent=1, sort_keys=True)
    else:
        report = policy_comparison_report(
            results, title=f"Policy comparison on {args.docs:,} docs"
        )
        report += "\n\n" + format_stage_comparison(
            registries, title="per-stage latency by policy"
        )
        report += "\n\n" + _host_time_table(host)
        flash_rows = [
            [policy] + row[1:]
            for policy, registry in registries.items()
            for row in _flash_rows(registry)
            if row[0] == "ssd-cache"
        ]
        if flash_rows:
            report += "\n\n" + format_table(
                ["policy", "erases", "WA", "free blocks", "wear skew",
                 "life used"],
                flash_rows, title="flash telemetry (ssd-cache)")
        report += "\n\n" + _timeline_table(timelines)
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"wrote report to {args.out}")
    return 0


def _host_time_table(host: dict) -> str:
    """Host wall-clock per policy (real seconds, not virtual time)."""
    rows = [
        [policy, f"{h['wall_s']:.2f}", f"{h['wall_us_per_query']:,.0f}",
         f"{h['hot_ops']['ftl_map_lookups']:,}",
         f"{h['hot_ops']['lru_node_moves']:,}",
         f"{h['hot_ops']['postings_decoded']:,}"]
        for policy, h in host.items()
    ]
    return format_table(
        ["policy", "wall s", "us/query", "ftl lookups", "lru moves",
         "postings"],
        rows, title="host time (wall clock; `repro profile` for attribution)")


def _compare_timelines(timelines: dict) -> dict:
    """The per-policy timeline section of the compare JSON payload."""
    from repro.obs import steady_state_window, window_series

    out = {}
    for policy, windows in timelines.items():
        out[policy] = {
            "windows": len(windows),
            "steady_window": steady_state_window(windows),
            "hit_ratio": [v for _, v in window_series(windows, "hit_ratio")],
            "p99_response_us": [
                v for _, v in window_series(windows, "p99_response_us")],
        }
    return out


def _timeline_table(timelines: dict) -> str:
    """Warmup columns: hit-ratio trajectory and steady-state onset."""
    from repro.obs import sparkline, steady_state_window, window_series

    rows = []
    for policy, windows in timelines.items():
        pts = window_series(windows, "hit_ratio")
        steady = steady_state_window(windows)
        rows.append([
            policy,
            len(windows),
            steady if steady is not None else "-",
            sparkline([v for _, v in pts], width=30) or "-",
            f"{pts[-1][1]:.1%}" if pts else "-",
        ])
    return format_table(
        ["policy", "windows", "steady@", "hit ratio over time", "final"],
        rows, title="timeline (50 ms windows)")


def _compare_dirs(args: argparse.Namespace) -> int:
    """Compare previously-written telemetry dirs side by side."""
    import os

    from repro.obs import (
        load_metrics_json,
        load_timeline_jsonl,
        sparkline,
        steady_state_window,
        sub_histogram,
        validate_telemetry_dir,
        window_series,
    )

    rows = []
    for d in args.dirs:
        try:
            validate_telemetry_dir(d)
            snapshot = load_metrics_json(os.path.join(d, "metrics.json"))
        except (ValueError, OSError) as exc:
            print(f"error: {d}: not a usable telemetry directory ({exc})",
                  file=sys.stderr)
            return 2
        queries = sum(
            m["value"] for m in snapshot["metrics"]
            if m["name"] == "queries_total")
        mean_ms = p99_ms = None
        merged = None
        for m in snapshot["metrics"]:
            if m["name"] == "query_latency_us" and m["kind"] == "histogram" \
                    and m["count"]:
                h = sub_histogram(m)  # snapshot carries the same fields
                if merged is None:
                    merged = h
                else:
                    merged.merge(h)
        if merged is not None:
            mean_ms = merged.mean / 1000.0
            p99_ms = merged.percentile(99.0) / 1000.0
        timeline_path = os.path.join(d, "timeline.jsonl")
        spark = steady = "-"
        if os.path.exists(timeline_path):
            tl = load_timeline_jsonl(timeline_path)
            pts = window_series(tl.windows, "hit_ratio")
            spark = sparkline([v for _, v in pts], width=24) or "-"
            s = steady_state_window(tl.windows)
            steady = s if s is not None else "-"
        rows.append([
            d,
            int(queries),
            f"{mean_ms:.2f}" if mean_ms is not None else "-",
            f"{p99_ms:.2f}" if p99_ms is not None else "-",
            steady,
            spark,
        ])
    print(format_table(
        ["dir", "queries", "mean ms", "p99 ms", "steady@", "hit ratio"],
        rows, title="telemetry dirs"))
    return 0


def _compare_payload(results: dict, registries: dict) -> dict:
    """The `repro compare --json` document (schema repro.compare/v1)."""
    payload: dict = {"schema": "repro.compare/v1", "policies": {}}
    for policy, result in results.items():
        registry = registries[policy]
        stats = result.stats
        stages = {}
        for name, tags, inst in registry.items():
            if name == "stage_latency_us" and inst.kind == "histogram" \
                    and inst.count:
                stages[tags["stage"]] = {
                    "p50_us": inst.percentile(50.0),
                    "p99_us": inst.percentile(99.0),
                    "mean_us": inst.mean,
                    "count": inst.count,
                }
        flash = {}
        for name, tags, inst in registry.items():
            if name.startswith("flash_"):
                flash.setdefault(tags["device"], {})[name] = inst.value
        payload["policies"][policy] = {
            "queries": result.queries,
            "mean_response_ms": result.mean_response_ms,
            "throughput_qps": result.throughput_qps,
            "result_hit_ratio": stats.result_hit_ratio,
            "list_hit_ratio": stats.list_hit_ratio,
            "combined_hit_ratio": stats.combined_hit_ratio,
            "ssd_erases": result.ssd_erases,
            "stage_latency_us": stages,
            "flash": flash,
        }
    return payload


def _cmd_explain(args: argparse.Namespace) -> int:
    import os

    from repro.obs import explain_subject, format_explanation, load_audit_jsonl

    if args.incident is not None:
        return _explain_incident(args.path, args.incident)
    if args.query is not None:
        return _explain_query(args.path, args.query)
    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, "audit.jsonl")
    if not os.path.exists(path):
        print(f"error: no audit trail at {path} "
              "(run with --telemetry and auditing enabled)",
              file=sys.stderr)
        return 2
    try:
        records = load_audit_jsonl(path)
    except (ValueError, OSError) as exc:
        print(f"error: {path}: not a usable audit trail ({exc})",
              file=sys.stderr)
        return 2
    if args.term is not None:
        kind, key = "list", args.term
    elif args.rb is not None:
        kind, key = "rb", args.rb
    else:
        kind, key = "gc", args.gc_block
    explanation = explain_subject(records, kind, key, at_us=args.at_us)
    print(format_explanation(explanation))
    return 0 if explanation["events"] else 1


def _explain_query(dir_path: str, query_id: int) -> int:
    """Chain a tail-latency exemplar to its span tree and audit records."""
    import json
    import os

    from repro.obs import load_audit_jsonl, load_timeline_jsonl

    if not os.path.isdir(dir_path):
        print(f"error: {dir_path}: --query needs a telemetry directory "
              f"(written by `repro run --telemetry DIR --timeline`)",
              file=sys.stderr)
        return 2
    timeline_path = os.path.join(dir_path, "timeline.jsonl")
    if not os.path.exists(timeline_path):
        print(f"error: {timeline_path} missing; exemplars are recorded by "
              f"`repro run --telemetry {dir_path} --timeline`",
              file=sys.stderr)
        return 2
    tl = load_timeline_jsonl(timeline_path)
    exemplars = [e for e in tl.exemplars if e.get("query_id") == query_id]

    # Kernel blame decomposes every query, not just the tail ones, so a
    # blame match keeps the command useful even without an exemplar.
    blame_match = []
    blame_path = os.path.join(dir_path, "blame.jsonl")
    if os.path.exists(blame_path):
        try:
            _, blame_queries = _load_blame_queries(blame_path)
        except (ValueError, OSError):
            blame_queries = []
        blame_match = _match_blame_query(blame_queries, query_id)

    if not exemplars and not blame_match:
        print(f"no tail exemplars for query {query_id} — only samples above "
              f"the capture percentile are recorded; see the exemplar lines "
              f"in {timeline_path} for the queries that are")
        return 1
    if not exemplars:
        print(f"no tail exemplars for query {query_id} — only samples above "
              f"the capture percentile are recorded — but the kernel blame "
              f"stream decomposed it:")

    spans = {}
    spans_path = os.path.join(dir_path, "spans.jsonl")
    if os.path.exists(spans_path):
        with open(spans_path) as fh:
            for line in fh:
                span = json.loads(line)
                spans[span["span_id"]] = span
    children: dict = {}
    for span in spans.values():
        children.setdefault(span.get("parent_id"), []).append(span)

    audit = []
    audit_path = os.path.join(dir_path, "audit.jsonl")
    if os.path.exists(audit_path):
        audit = load_audit_jsonl(audit_path)

    if exemplars:
        print(f"query {query_id}: {len(exemplars)} tail exemplar(s)")
    for ex in exemplars:
        print(f"\nexemplar: {ex['metric']} = {ex['value_us']:.1f} us "
              f"(window {ex['window']}, t = {ex.get('t_us', 0.0):.1f} us)")
        root = spans.get(ex.get("span_id"))
        if root is None:
            print("  (no matching span — run with tracing enabled to "
                  "capture the breakdown)")
            continue

        def show(span, depth):
            attrs = " ".join(f"{k}={v}" for k, v in span["attrs"].items())
            print(f"  {'  ' * depth}{span['name']} "
                  f"[{span['dur_us']:.1f} us] {attrs}".rstrip())
            for child in sorted(children.get(span["span_id"], []),
                                key=lambda s: s["start_us"]):
                show(child, depth + 1)

        show(root, 0)
        inside = [r for r in audit
                  if root["start_us"] <= r["t_us"] <= root["end_us"]]
        if inside:
            print(f"  decisions during this query ({len(inside)}):")
            for r in inside:
                data = " ".join(f"{k}={v}" for k, v in r["data"].items())
                print(f"    t={r['t_us']:.1f} {r['type']} "
                      f"{r['kind']}:{r['key']} {data}".rstrip())

    # Kernel blame: where the microseconds queued vs served, when the
    # run went through the concurrency kernel (blame.jsonl present).
    if blame_match:
        from repro.obs import format_query_blame

        print("\nkernel blame (wait vs service per resource):")
        for q in blame_match:
            print(format_query_blame(q))
    return 0


def _explain_incident(dir_path: str, n: int) -> int:
    """Walk one flight-recorder incident bundle end to end."""
    import os

    from repro.obs import format_incident, list_incidents, load_incident

    if not os.path.isdir(dir_path):
        print(f"error: {dir_path}: --incident needs a telemetry directory "
              f"(written by a kernel-mode `repro run --telemetry DIR "
              f"--timeline`)", file=sys.stderr)
        return 2
    bundles = list_incidents(dir_path)
    want = os.path.join(dir_path, f"incident-{n}")
    if want not in bundles:
        have = ", ".join(os.path.basename(b) for b in bundles) or "none"
        print(f"error: no incident-{n} under {dir_path} (have: {have})",
              file=sys.stderr)
        return 2
    try:
        incident = load_incident(want)
    except (ValueError, OSError) as exc:
        print(f"error: {want}: unreadable incident bundle ({exc})",
              file=sys.stderr)
        return 2
    print(format_incident(incident))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.obs import fetch_status, format_top_frame, status_from_dir

    def frame() -> str:
        if os.path.isdir(args.target):
            status = status_from_dir(args.target)
        else:
            status = fetch_status(args.target)
        return format_top_frame(status, width=args.width)

    try:
        if args.once:
            print(frame())
            return 0
        while True:
            body = frame()
            sys.stdout.write("\x1b[2J\x1b[H" + body + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (ValueError, OSError) as exc:
        print(f"error: {args.target}: {exc}", file=sys.stderr)
        return 2


def _cmd_incidents(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.obs import list_incidents, validate_incident_dir

    if not os.path.isdir(args.dir):
        print(f"error: {args.dir}: not a directory", file=sys.stderr)
        return 2
    rows = []
    docs = []
    valid = 0
    for bundle in list_incidents(args.dir):
        name = os.path.basename(bundle)
        try:
            counts = validate_incident_dir(bundle)
        except (ValueError, OSError) as exc:
            rows.append([name, f"INVALID: {exc}", "-", "-", "-"])
            docs.append({"bundle": name, "valid": False,
                         "error": str(exc)})
            continue
        valid += 1
        with open(os.path.join(bundle, "incident.json")) as fh:
            manifest = json.load(fh)
        trig = manifest["trigger"]
        rows.append([
            name,
            f"[{trig['severity']}] {trig['detector']}",
            trig["window"],
            len(manifest["qids"]),
            f"{counts['windows']}w/{counts['spans']}s/"
            f"{counts['blame_queries']}q/{counts['audit_records']}a",
        ])
        docs.append({"bundle": name, "valid": True, "manifest": manifest,
                     "counts": counts})
    if args.json:
        print(json.dumps({"dir": args.dir, "valid": valid,
                          "bundles": docs}, indent=1))
    elif rows:
        print(format_table(
            ["bundle", "trigger", "window", "qids", "evidence"], rows,
            title=f"incidents in {args.dir}"))
    else:
        print(f"no incident bundles in {args.dir}")
    if args.require is not None and valid < args.require:
        print(f"error: {valid} valid incident bundle(s), need >= "
              f"{args.require}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_benches,
        format_regressions,
        format_wall_report,
        load_bench,
        next_bench_path,
        run_suite,
        write_bench,
    )

    doc = run_suite(args.suite,
                    progress=lambda s: print(f"running {s.name} ..."))
    out = args.out or next_bench_path()
    write_bench(doc, out)
    for name, entry in doc["scenarios"].items():
        m = entry["metrics"]
        host = entry.get("host", {})
        wall_txt = f"({m['wall_clock_s']:.1f} s serve"
        if "wall_us_per_query" in host:
            wall_txt += f", {host['wall_us_per_query']:,.0f} us/q host"
        wall_txt += ")"
        if "reject_fraction" in m:  # open-loop saturation scenario
            print(f"  {name:<16s} {m['mean_response_ms']:8.2f} ms/q "
                  f"{m['throughput_qps']:8.1f} q/s "
                  f"p999 {m['p999_response_ms']:8.1f} ms "
                  f"shed {m['reject_fraction']:6.1%} "
                  f"util {m['bottleneck_utilization']:5.1%} "
                  f"{wall_txt}")
        else:
            print(f"  {name:<16s} {m['mean_response_ms']:8.2f} ms/q "
                  f"{m['throughput_qps']:8.1f} q/s "
                  f"hit {m['combined_hit_ratio']:6.1%} "
                  f"erases {m['ssd_erases']:5d} "
                  f"{wall_txt}")
    print(f"wrote {out}")
    if args.against:
        baseline = load_bench(args.against)
        try:
            regressions = compare_benches(doc, baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_wall_report(doc, baseline))
        print(f"gate vs {args.against}: {format_regressions(regressions)}")
        if regressions:
            return 1
    return 0


def _sim_fingerprint(result) -> dict:
    """The simulated metrics that must not move when observability does."""
    stats = result.stats
    return {
        "queries": result.queries,
        "mean_response_ms": result.mean_response_ms,
        "throughput_qps": result.throughput_qps,
        "result_hit_ratio": stats.result_hit_ratio,
        "list_hit_ratio": stats.list_hit_ratio,
        "combined_hit_ratio": stats.combined_hit_ratio,
        "ssd_erases": result.ssd_erases,
    }


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.bench.scenarios import SUITES
    from repro.core.config import CacheConfig, Policy
    from repro.obs import (
        Profiler,
        Telemetry,
        format_profile,
        measure_obs_tax,
        write_folded,
        write_profile,
    )
    from repro.workloads.retrieval import prepare_cached_manager, run_cached
    from repro.workloads.sweep import make_log_for, make_scaled_index

    # cProfile captures the calling thread only; kernel tasks run on OS
    # threads, so open-loop scenarios cannot be attributed and are skipped.
    scenarios = [s for s in SUITES[args.suite] if s.arrival == "closed"]
    skipped = len(SUITES[args.suite]) - len(scenarios)
    if not scenarios:
        print(f"error: suite {args.suite!r} has only open-loop scenarios; "
              f"cProfile cannot attribute kernel task threads",
              file=sys.stderr)
        return 2
    if skipped:
        print(f"(skipping {skipped} open-loop scenario(s): cProfile is "
              f"per-thread)")

    profiler = Profiler()
    start = time.perf_counter()
    total_queries = 0
    first_run = None
    for sc in scenarios:
        print(f"profiling {sc.name} ...")
        index = make_scaled_index(sc.docs)
        log = make_log_for(sc.queries, seed=sc.seed)
        cfg = CacheConfig.paper_split(
            sc.mem_mb * MB, sc.ssd_mb * MB,
            policy=Policy(sc.policy), ttl_us=sc.ttl_ms * 1000.0,
        )
        if first_run is None:
            first_run = (sc, index, log, cfg)
        mgr = prepare_cached_manager(
            index, log, cfg, static_analyze_queries=sc.queries // 2,
            seed=sc.seed, telemetry=Telemetry(trace=False, audit=False),
        )
        with profiler.profile():
            run_cached(index, log, cfg, seed=sc.seed, manager=mgr)
        total_queries += sc.queries

    doc = profiler.summary(top=args.top)
    doc["suite"] = args.suite
    doc["queries"] = total_queries
    doc["build_wall_s"] = (time.perf_counter() - start) - profiler.wall_s

    tax = None
    if not args.no_obs_tax:
        sc, index, log, cfg = first_run

        def prepared(telemetry):
            return prepare_cached_manager(
                index, log, cfg, static_analyze_queries=sc.queries // 2,
                seed=sc.seed, telemetry=telemetry)

        obs_manager = prepared(Telemetry(trace=False, audit=False))
        bare_manager = prepared(None)
        tax = measure_obs_tax(
            lambda: _sim_fingerprint(run_cached(
                index, log, cfg, seed=sc.seed, manager=obs_manager)),
            lambda: _sim_fingerprint(run_cached(
                index, log, cfg, seed=sc.seed, manager=bare_manager)),
        )
        doc["obs_tax"] = tax

    delta_table = None
    if args.against:
        from repro.bench.harness import load_bench
        from repro.obs import baseline_wall_ns_per_op, format_wall_ns_delta

        baseline = load_bench(args.against)
        doc["against"] = {
            "path": str(args.against),
            "wall_ns_per_op": baseline_wall_ns_per_op(baseline),
        }
        delta_table = format_wall_ns_delta(doc, baseline, label=args.against)

    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print()
        print(format_profile(doc, top=args.top))
        if delta_table is not None:
            print()
            print(delta_table)
    if args.out:
        write_profile(doc, args.out)
        print(f"wrote profile summary to {args.out}")
    if args.folded:
        lines = profiler.folded_lines()
        write_folded(lines, args.folded)
        print(f"wrote {len(lines)} collapsed stacks to {args.folded}")
    if tax is not None and not tax["simulated_match"]:
        print("error: simulated metrics diverged between telemetry-on and "
              "telemetry-off runs — observability is perturbing the "
              "simulation", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "corpus": _cmd_corpus,
        "trace": _cmd_trace,
        "analyze": _cmd_analyze,
        "run": _cmd_run,
        "report": _cmd_report,
        "timeline": _cmd_timeline,
        "blame": _cmd_blame,
        "explain": _cmd_explain,
        "top": _cmd_top,
        "incidents": _cmd_incidents,
        "compare": _cmd_compare,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
