"""Command-line interface.

The subcommands cover the common standalone uses of the library::

    repro corpus   --docs 1000000                 # corpus statistics
    repro trace    --requests 50000 --out t.spc   # synthetic trace + analysis
    repro analyze  t.spc --format spc             # analyze an existing trace
    repro run      --policy cbslru --queries 5000 # full cached retrieval run
    repro run      ... --telemetry out/           # + spans, metrics, audit dump
    repro report   out/                           # re-read a telemetry dir
    repro explain  out/ --term 123                # why is term 123 (not) on SSD?
    repro compare  --queries 5000                 # all policies side by side
    repro bench    --suite smoke                  # deterministic benchmark run
    repro bench    --suite smoke --against BENCH_0003.json  # regression gate

Install exposes ``repro`` as a console entry point; ``python -m
repro.cli`` works without installation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table

__all__ = ["main", "build_parser"]

MB = 1024 * 1024


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD-based hybrid storage architecture for search engines "
                    "(ICPP 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("corpus", help="generate and summarise a synthetic corpus")
    p.add_argument("--docs", type=int, default=1_000_000)
    p.add_argument("--vocab", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("trace", help="generate a synthetic web-search trace")
    p.add_argument("--requests", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--out", type=str, default=None,
                   help="write the trace (format by extension: .spc, .csv "
                        "(MSR), .dmn (DiskMon))")

    p = sub.add_parser("analyze", help="analyze an I/O trace file")
    p.add_argument("path", type=str)
    p.add_argument("--format", choices=("spc", "msr", "diskmon"), default="spc")

    p = sub.add_parser("run", help="run a cached retrieval experiment")
    p.add_argument("--policy", choices=("lru", "cblru", "cbslru"),
                   default="cbslru")
    p.add_argument("--docs", type=int, default=1_000_000)
    p.add_argument("--queries", type=int, default=4_000)
    p.add_argument("--mem-mb", type=int, default=16)
    p.add_argument("--ssd-mb", type=int, default=64)
    p.add_argument("--ttl-ms", type=float, default=0.0,
                   help="dynamic scenario: data TTL in milliseconds (0=static)")
    p.add_argument("--three-level", action="store_true",
                   help="enable the intersection cache (Long & Suel [19])")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                   help="collect spans + metrics and write them to DIR "
                        "(spans.jsonl, metrics.json, metrics.prom)")

    p = sub.add_parser("report",
                       help="print the per-stage breakdown of a telemetry dir")
    p.add_argument("dir", type=str,
                   help="directory written by `repro run --telemetry`")

    p = sub.add_parser("explain",
                       help="reconstruct one subject's decision history from "
                            "an audit trail")
    p.add_argument("path", type=str,
                   help="telemetry dir (audit.jsonl inside) or an audit.jsonl "
                        "file")
    g = p.add_mutually_exclusive_group(required=True)
    g.add_argument("--term", type=int, default=None,
                   help="explain an inverted list by term id")
    g.add_argument("--rb", type=int, default=None,
                   help="explain an SSD result block by RB id")
    g.add_argument("--gc-block", type=int, default=None,
                   help="explain a flash block's GC victim selections")
    p.add_argument("--at-us", type=float, default=None,
                   help="reconstruct state as of this virtual-clock time")

    p = sub.add_parser("compare",
                       help="run all three policies and emit a markdown report")
    p.add_argument("--docs", type=int, default=1_000_000)
    p.add_argument("--queries", type=int, default=4_000)
    p.add_argument("--mem-mb", type=int, default=16)
    p.add_argument("--ssd-mb", type=int, default=64)
    p.add_argument("--out", type=str, default=None,
                   help="write the report to a file")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document instead of "
                        "markdown")
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("bench",
                       help="run a deterministic benchmark suite and emit "
                            "BENCH_<n>.json")
    p.add_argument("--suite", choices=("smoke", "full"), default="smoke")
    p.add_argument("--out", type=str, default=None,
                   help="output path (default: next free BENCH_<n>.json)")
    p.add_argument("--against", type=str, default=None, metavar="PREV.json",
                   help="gate against a previous BENCH document; exits "
                        "non-zero on regression")
    return parser


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.engine.corpus import CorpusConfig, build_corpus_stats
    from repro.engine.postings import POSTING_BYTES

    stats = build_corpus_stats(
        CorpusConfig(num_docs=args.docs, vocab_size=args.vocab,
                     avg_doc_len=300, seed=args.seed)
    )
    sizes = stats.doc_freqs * POSTING_BYTES
    rows = [
        ["documents", f"{args.docs:,}"],
        ["vocabulary", f"{args.vocab:,}"],
        ["index size", f"{sizes.sum() / 1e6:.1f} MB"],
        ["largest list", f"{sizes.max() / 1024:.0f} KB"],
        ["median list", f"{np.median(sizes) / 1024:.1f} KB"],
        ["mean utilization", f"{stats.utilization.mean():.1%}"],
    ]
    print(format_table(["metric", "value"], rows, title="corpus statistics"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace.analyzer import analyze_trace
    from repro.trace.generator import WebSearchTraceConfig, generate_websearch_trace

    trace = generate_websearch_trace(
        WebSearchTraceConfig(num_requests=args.requests, seed=args.seed)
    )
    print(analyze_trace(trace).summary())
    if args.out:
        _write_by_extension(trace, args.out)
        print(f"wrote {len(trace)} requests to {args.out}")
    return 0


def _write_by_extension(trace, path: str) -> None:
    from repro.trace.diskmon import write_diskmon
    from repro.trace.msr import write_msr
    from repro.trace.umass import write_spc

    if path.endswith(".spc"):
        write_spc(trace, path)
    elif path.endswith(".csv"):
        write_msr(trace, path)
    elif path.endswith(".dmn"):
        write_diskmon(trace, path)
    else:
        raise SystemExit(f"unknown trace extension on {path!r} "
                         "(want .spc, .csv or .dmn)")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.trace.analyzer import analyze_trace
    from repro.trace.diskmon import parse_diskmon
    from repro.trace.msr import parse_msr
    from repro.trace.umass import parse_spc

    parsers = {"spc": parse_spc, "msr": parse_msr, "diskmon": parse_diskmon}
    trace = parsers[args.format](args.path)
    print(analyze_trace(trace).summary())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.config import CacheConfig, Policy
    from repro.core.intersections import ThreeLevelCacheManager
    from repro.core.manager import CacheManager, build_hierarchy_for
    from repro.workloads.sweep import make_log_for, make_scaled_index

    telemetry = None
    if args.telemetry:
        import os

        from repro.obs import Telemetry

        telemetry = Telemetry()
        # Stream spans to disk as they finish instead of accumulating
        # them in memory — an arbitrarily long run holds zero spans.
        os.makedirs(args.telemetry, exist_ok=True)
        telemetry.tracer.open_stream(os.path.join(args.telemetry,
                                                  "spans.jsonl"))

    index = make_scaled_index(args.docs)
    log = make_log_for(args.queries, seed=args.seed)
    cfg = CacheConfig.paper_split(
        args.mem_mb * MB, args.ssd_mb * MB,
        policy=Policy(args.policy),
        ttl_us=args.ttl_ms * 1000.0,
    )
    hierarchy = build_hierarchy_for(cfg, index)
    if args.three_level:
        manager: CacheManager = ThreeLevelCacheManager(
            cfg, hierarchy, index, telemetry=telemetry)
    else:
        manager = CacheManager(cfg, hierarchy, index, telemetry=telemetry)
    if cfg.policy is Policy.CBSLRU and cfg.uses_ssd:
        manager.warmup_static(log)
    for query in log:
        manager.process_query(query)

    stats = manager.stats
    rows = [
        ["queries", stats.queries],
        ["result hit ratio", f"{stats.result_hit_ratio:.1%}"],
        ["list hit ratio", f"{stats.list_hit_ratio:.1%}"],
        ["combined hit ratio", f"{stats.combined_hit_ratio:.1%}"],
        ["mean response", f"{stats.mean_response_us / 1000:.2f} ms"],
        ["throughput", f"{stats.throughput_qps:.1f} q/s"],
        ["SSD erasures", manager.ssd.erase_count if manager.ssd else 0],
    ]
    if args.ttl_ms > 0:
        rows.append(["expired (results/lists)",
                     f"{stats.expired_results}/{stats.expired_lists}"])
    if args.three_level:
        inter = manager.intersections  # type: ignore[attr-defined]
        rows.append(["intersection hits", inter.hits])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.policy.upper()} on {args.docs:,} docs"))
    if telemetry is not None:
        from repro.obs import format_stage_breakdown, write_telemetry_dir

        print()
        print(format_stage_breakdown(telemetry.registry,
                                     title="per-stage latency"))
        written = write_telemetry_dir(telemetry, args.telemetry)
        flash_rows = _flash_rows(telemetry.registry)
        if flash_rows:
            print()
            print(format_table(
                ["device", "erases", "WA", "free blocks", "wear skew",
                 "life used"],
                flash_rows, title="flash devices"))
        print(f"\nwrote {written['spans']} spans, {written['metrics']} "
              f"metrics and {written['audit_records']} audit records "
              f"to {args.telemetry}/")
        if written["dropped_spans"]:
            print(f"({written['dropped_spans']} spans dropped past the cap)")
    return 0


def _flash_rows(registry) -> list[list]:
    """One table row per flash device seen in the registry."""
    devices = sorted({
        tags["device"] for name, tags, _ in registry.items()
        if name == "flash_erases_total"
    })
    rows = []
    for dev in devices:
        def val(metric: str, default=0.0):
            inst = registry.get(metric, device=dev)
            return inst.value if inst is not None else default

        rows.append([
            dev,
            int(val("flash_erases_total")),
            f"{val('flash_write_amplification'):.2f}",
            int(val("flash_free_blocks")),
            f"{val('flash_wear_skew'):.2f}",
            f"{val('flash_lifetime_consumed'):.2%}",
        ])
    return rows


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.obs import (
        format_stage_breakdown,
        load_metrics_json,
        validate_telemetry_dir,
    )

    counts = validate_telemetry_dir(args.dir)
    snapshot = load_metrics_json(os.path.join(args.dir, "metrics.json"))
    print(format_stage_breakdown(
        snapshot, title=f"per-stage latency ({args.dir})"))
    print(f"\n{counts['spans']} spans, {counts['metrics']} metrics")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.report import policy_comparison_report
    from repro.core.config import CacheConfig, Policy
    from repro.obs import Telemetry, format_stage_comparison
    from repro.workloads.retrieval import run_cached
    from repro.workloads.sweep import make_log_for, make_scaled_index

    index = make_scaled_index(args.docs)
    log = make_log_for(args.queries, seed=args.seed)
    results = {}
    registries = {}
    for policy in (Policy.LRU, Policy.CBLRU, Policy.CBSLRU):
        cfg = CacheConfig.paper_split(args.mem_mb * MB, args.ssd_mb * MB,
                                      policy=policy)
        tel = Telemetry(trace=False, audit=False)
        results[policy.value] = run_cached(
            index, log, cfg, static_analyze_queries=args.queries // 2,
            telemetry=tel,
        )
        tel.collect()  # sample the flash bridges before reading the registry
        registries[policy.value] = tel.registry

    if args.json:
        import json

        report = json.dumps(_compare_payload(results, registries), indent=1,
                            sort_keys=True)
    else:
        report = policy_comparison_report(
            results, title=f"Policy comparison on {args.docs:,} docs"
        )
        report += "\n\n" + format_stage_comparison(
            registries, title="per-stage latency by policy"
        )
        flash_rows = [
            [policy] + row[1:]
            for policy, registry in registries.items()
            for row in _flash_rows(registry)
            if row[0] == "ssd-cache"
        ]
        if flash_rows:
            report += "\n\n" + format_table(
                ["policy", "erases", "WA", "free blocks", "wear skew",
                 "life used"],
                flash_rows, title="flash telemetry (ssd-cache)")
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"wrote report to {args.out}")
    return 0


def _compare_payload(results: dict, registries: dict) -> dict:
    """The `repro compare --json` document (schema repro.compare/v1)."""
    payload: dict = {"schema": "repro.compare/v1", "policies": {}}
    for policy, result in results.items():
        registry = registries[policy]
        stats = result.stats
        stages = {}
        for name, tags, inst in registry.items():
            if name == "stage_latency_us" and inst.kind == "histogram" \
                    and inst.count:
                stages[tags["stage"]] = {
                    "p50_us": inst.percentile(50.0),
                    "p99_us": inst.percentile(99.0),
                    "mean_us": inst.mean,
                    "count": inst.count,
                }
        flash = {}
        for name, tags, inst in registry.items():
            if name.startswith("flash_"):
                flash.setdefault(tags["device"], {})[name] = inst.value
        payload["policies"][policy] = {
            "queries": result.queries,
            "mean_response_ms": result.mean_response_ms,
            "throughput_qps": result.throughput_qps,
            "result_hit_ratio": stats.result_hit_ratio,
            "list_hit_ratio": stats.list_hit_ratio,
            "combined_hit_ratio": stats.combined_hit_ratio,
            "ssd_erases": result.ssd_erases,
            "stage_latency_us": stages,
            "flash": flash,
        }
    return payload


def _cmd_explain(args: argparse.Namespace) -> int:
    import os

    from repro.obs import explain_subject, format_explanation, load_audit_jsonl

    path = args.path
    if os.path.isdir(path):
        path = os.path.join(path, "audit.jsonl")
    if not os.path.exists(path):
        raise SystemExit(f"no audit trail at {path} "
                         "(run with --telemetry and auditing enabled)")
    records = load_audit_jsonl(path)
    if args.term is not None:
        kind, key = "list", args.term
    elif args.rb is not None:
        kind, key = "rb", args.rb
    else:
        kind, key = "gc", args.gc_block
    explanation = explain_subject(records, kind, key, at_us=args.at_us)
    print(format_explanation(explanation))
    return 0 if explanation["events"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_benches,
        format_regressions,
        load_bench,
        next_bench_path,
        run_suite,
        write_bench,
    )

    doc = run_suite(args.suite,
                    progress=lambda s: print(f"running {s.name} ..."))
    out = args.out or next_bench_path()
    write_bench(doc, out)
    for name, entry in doc["scenarios"].items():
        m = entry["metrics"]
        print(f"  {name:<16s} {m['mean_response_ms']:8.2f} ms/q "
              f"{m['throughput_qps']:8.1f} q/s "
              f"hit {m['combined_hit_ratio']:6.1%} "
              f"erases {m['ssd_erases']:5d} "
              f"({m['wall_clock_s']:.1f} s wall)")
    print(f"wrote {out}")
    if args.against:
        baseline = load_bench(args.against)
        regressions = compare_benches(doc, baseline)
        print(f"gate vs {args.against}: {format_regressions(regressions)}")
        if regressions:
            return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "corpus": _cmd_corpus,
        "trace": _cmd_trace,
        "analyze": _cmd_analyze,
        "run": _cmd_run,
        "report": _cmd_report,
        "explain": _cmd_explain,
        "compare": _cmd_compare,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
