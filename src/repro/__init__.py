"""repro — SSD-based hybrid storage architecture for large-scale search engines.

A full reproduction of Li et al., *An Efficient SSD-based Hybrid Storage
Architecture for Large-scale Search Engines* (ICPP 2012): a two-level
cache (DRAM L1, SSD L2) in front of an HDD-resident inverted index, with
the paper's data selection (Formula 1/2 + TEV), log-based data placement
(write buffer + 128 KB result blocks) and cost-based replacement policies
(CBLRU, CBSLRU) — plus every substrate the evaluation needs: a NAND/FTL
SSD simulator, an HDD model, a synthetic search engine, and I/O trace
tooling.

Quickstart::

    from repro import (CacheConfig, CacheManager, InvertedIndex,
                       build_hierarchy_for, CorpusConfig,
                       generate_query_log, QueryLogConfig)

    index = InvertedIndex(CorpusConfig.paper_scale(1_000_000))
    log = generate_query_log(QueryLogConfig(num_queries=5_000))
    cfg = CacheConfig.paper_split(mem_bytes=48 << 20, ssd_bytes=512 << 20)
    mgr = CacheManager(cfg, build_hierarchy_for(cfg, index), index)
    for query in log:
        mgr.process_query(query)
    print(mgr.stats.combined_hit_ratio, mgr.ssd.erase_count)
"""

from repro.cluster.broker import Broker
from repro.cluster.shard import IndexShard
from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.intersections import ThreeLevelCacheManager
from repro.core.manager import CacheManager, QueryOutcome, build_hierarchy_for
from repro.core.stats import CacheStats, Situation
from repro.engine.corpus import CorpusConfig
from repro.engine.index import InvertedIndex
from repro.engine.processor import QueryProcessor
from repro.engine.query import Query
from repro.engine.querylog import QueryLog, QueryLogConfig, generate_query_log
from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.hdd.disk import SimulatedHDD
from repro.hdd.geometry import DiskGeometry
from repro.storage.hierarchy import HierarchyConfig, StorageHierarchy
from repro.workloads.retrieval import RunResult, run_cached, run_uncached

__version__ = "1.0.0"

__all__ = [
    "Broker",
    "IndexShard",
    "CacheConfig",
    "Policy",
    "Scheme",
    "CacheManager",
    "ThreeLevelCacheManager",
    "QueryOutcome",
    "build_hierarchy_for",
    "CacheStats",
    "Situation",
    "CorpusConfig",
    "InvertedIndex",
    "QueryProcessor",
    "Query",
    "QueryLog",
    "QueryLogConfig",
    "generate_query_log",
    "FlashConfig",
    "SimulatedSSD",
    "SimulatedHDD",
    "DiskGeometry",
    "HierarchyConfig",
    "StorageHierarchy",
    "RunResult",
    "run_cached",
    "run_uncached",
    "__version__",
]
