"""Configuration of the two-level cache (Tables II/III + Section VI).

All the magic numbers the paper states are defaults here: 2 KB pages,
128 KB blocks (= SB in Formula 1), 20 KB result entries (K = 50 documents
of ~400 B), the replace-first window W = 5, and the 20 % / 80 % capacity
split between result and inverted-list caches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Policy", "Scheme", "CacheConfig"]


class Policy(str, enum.Enum):
    """SSD-cache management policy (the Fig. 14b/17/19 comparands)."""

    LRU = "lru"
    CBLRU = "cblru"
    CBSLRU = "cbslru"


class Scheme(str, enum.Enum):
    """Two-level caching scheme (Section IV.A)."""

    INCLUSIVE = "inclusive"
    EXCLUSIVE = "exclusive"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class CacheConfig:
    """Capacities and policy parameters of one cache-manager instance."""

    # -- capacities (bytes) ------------------------------------------------
    mem_result_bytes: int = 4 * 1024 * 1024
    mem_list_bytes: int = 16 * 1024 * 1024
    ssd_result_bytes: int = 40 * 1024 * 1024
    ssd_list_bytes: int = 160 * 1024 * 1024

    # -- fixed-format parameters -------------------------------------------
    #: SB of Formula 1 — the flash block size the SSD cache is aligned to
    block_bytes: int = 128 * 1024
    #: one cached result entry (top-50 docs x ~400 B)
    result_entry_bytes: int = 20 * 1024
    top_k: int = 50

    # -- policy knobs ----------------------------------------------------------
    policy: Policy = Policy.CBSLRU
    scheme: Scheme = Scheme.HYBRID
    #: W — entries in the replace-first region of the SSD LRU lists
    replace_window: int = 5
    #: TEV — minimum efficiency value (accesses/block) to admit a list to SSD
    tev: float = 0.0
    #: fraction of each SSD region frozen as CBSLRU's static cache
    static_fraction: float = 0.5
    #: result entries accumulated in the write buffer before an RB flush
    write_buffer_entries: int = 0  # 0 = derive from block/entry size
    #: dynamic scenario (Section IV.B): cached data older than this is
    #: stale and re-read from the index store.  0 = static scenario.
    ttl_us: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("mem_result_bytes", "mem_list_bytes",
                           "ssd_result_bytes", "ssd_list_bytes"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.result_entry_bytes <= 0 or self.result_entry_bytes > self.block_bytes:
            raise ValueError("result_entry_bytes must be in (0, block_bytes]")
        if self.replace_window < 1:
            raise ValueError("replace_window must be >= 1")
        if not 0.0 <= self.static_fraction < 1.0:
            raise ValueError("static_fraction must be in [0, 1)")
        if self.tev < 0:
            raise ValueError("tev cannot be negative")
        if self.write_buffer_entries < 0:
            raise ValueError("write_buffer_entries cannot be negative")
        if self.ttl_us < 0:
            raise ValueError("ttl_us cannot be negative")

    # -- derived ------------------------------------------------------------

    @property
    def entries_per_rb(self) -> int:
        """Result entries per 128 KB result block (6 with the defaults)."""
        if self.write_buffer_entries:
            return self.write_buffer_entries
        return max(1, self.block_bytes // self.result_entry_bytes)

    @property
    def ssd_result_blocks(self) -> int:
        return self.ssd_result_bytes // self.block_bytes

    @property
    def ssd_list_blocks(self) -> int:
        return self.ssd_list_bytes // self.block_bytes

    @property
    def ssd_cache_bytes(self) -> int:
        """Total SSD space the cache file needs."""
        return (self.ssd_result_blocks + self.ssd_list_blocks) * self.block_bytes

    @property
    def uses_ssd(self) -> bool:
        """False for one-level (memory-only) configurations."""
        return self.ssd_cache_bytes > 0

    # -- convenience constructors -----------------------------------------------

    @classmethod
    def paper_split(
        cls,
        mem_bytes: int,
        ssd_bytes: int = 0,
        rc_fraction: float = 0.2,
        **overrides,
    ) -> "CacheConfig":
        """Split total capacities 20/80 between RC and IC (Section VII.A).

        The SSD side keeps the paper's proportions from Fig. 16: the SSD
        result cache is 10x the memory result cache, and the rest of the
        SSD budget goes to the inverted-list cache.  Section VII.D's write
        threshold is on by default (TEV = 0.5 accesses/block): one-hit
        tail lists are discarded instead of flushed — "which can reduce
        unnecessary writes to SSD".
        """
        if not 0.0 <= rc_fraction <= 1.0:
            raise ValueError("rc_fraction must be in [0, 1]")
        mem_rc = int(mem_bytes * rc_fraction)
        mem_lc = mem_bytes - mem_rc
        if ssd_bytes > 0:
            ssd_rc = min(10 * mem_rc, int(ssd_bytes * rc_fraction))
            ssd_lc = ssd_bytes - ssd_rc
        else:
            ssd_rc = ssd_lc = 0
        overrides.setdefault("tev", 0.5)
        return cls(
            mem_result_bytes=mem_rc,
            mem_list_bytes=mem_lc,
            ssd_result_bytes=ssd_rc,
            ssd_list_bytes=ssd_lc,
            **overrides,
        )

    def one_level(self) -> "CacheConfig":
        """The same configuration without the SSD tier (1LC baseline)."""
        return CacheConfig(
            mem_result_bytes=self.mem_result_bytes,
            mem_list_bytes=self.mem_list_bytes,
            ssd_result_bytes=0,
            ssd_list_bytes=0,
            block_bytes=self.block_bytes,
            result_entry_bytes=self.result_entry_bytes,
            top_k=self.top_k,
            policy=self.policy,
            scheme=self.scheme,
            replace_window=self.replace_window,
            tev=self.tev,
            static_fraction=self.static_fraction,
            write_buffer_entries=self.write_buffer_entries,
        )
