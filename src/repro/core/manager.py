"""The cache manager (Fig. 2): query, selection and replacement management.

This is the paper's system.  One :class:`CacheManager` owns:

* the **L1 caches** in memory — a fixed-length result cache and a
  variable-length inverted-list cache;
* the **L2 caches** on SSD — a result region of 128 KB result blocks and
  an inverted-list region of whole flash blocks (cost-based policies), or
  byte-granular extents (the LRU baseline);
* the **write buffer** assembling evicted result entries into RBs;
* the policy machinery: Formula 1/2 selection with the TEV filter, the
  working/replace-first-region LRU lists, IREN-ranked RB victims,
  replaceable-state tracking with TRIM, and CBSLRU's static partition.

``process_query`` runs the full Table I flow for one query and charges
every device access to the shared virtual clock, so mean response time,
throughput, hit ratios, SSD erase counts and the situation matrix all fall
out of one replay loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.entries import CachedList, CachedResult, EntryState, ResultBlock
from repro.core.lru import LruList
from repro.core.placement import WriteBuffer
from repro.core.selection import SelectionPolicy, efficiency_value, ssd_cache_blocks
from repro.core.ssd_region import BlockRegion, ByteRegion
from repro.core.stats import CacheStats, Situation
from repro.engine.index import InvertedIndex
from repro.engine.processor import QueryPlan, QueryProcessor
from repro.engine.query import Query
from repro.engine.querylog import QueryLog
from repro.flash.constants import SECTOR_BYTES, FlashConfig
from repro.storage.hierarchy import HierarchyConfig, StorageHierarchy

__all__ = ["QueryOutcome", "CacheManager", "build_hierarchy_for"]


@dataclass(frozen=True)
class QueryOutcome:
    """What happened to one query."""

    query: Query
    situation: Situation
    response_us: float
    #: 1 = L1 result hit, 2 = L2 result hit, 0 = computed
    result_hit_level: int


def build_hierarchy_for(
    cache_config: CacheConfig,
    index: InvertedIndex | None = None,
    index_on: str = "hdd",
    memory_bytes: int | None = None,
    flash_overrides: dict | None = None,
    seed: int = 0,
) -> StorageHierarchy:
    """Build a storage hierarchy sized for a cache configuration.

    The SSD's flash geometry is derived from the cache-file size plus
    ~12 % over-provisioning, so garbage collection has realistic headroom
    regardless of the experiment's cache capacity.
    """
    overrides = dict(flash_overrides or {})
    op = overrides.pop("overprovision", 0.12)
    base = FlashConfig(**overrides) if overrides else FlashConfig()
    cache_blocks = max(1, cache_config.ssd_cache_bytes // base.block_bytes)
    num_blocks = int(cache_blocks / (1.0 - op)) + 4
    ssd_cfg = FlashConfig(
        page_bytes=base.page_bytes,
        pages_per_block=base.pages_per_block,
        num_blocks=num_blocks,
        overprovision=op,
        read_us=base.read_us,
        write_us=base.write_us,
        erase_us=base.erase_us,
        channels=base.channels,
        gc_free_block_threshold=base.gc_free_block_threshold,
    )
    mem = memory_bytes or max(
        64 * 1024 * 1024,
        2 * (cache_config.mem_result_bytes + cache_config.mem_list_bytes),
    )
    index_ssd_cfg = None
    if index_on == "ssd":
        index_bytes = index.index_bytes if index is not None else 2**30
        idx_blocks = int((index_bytes // base.block_bytes + 1) / (1.0 - op)) + 4
        index_ssd_cfg = FlashConfig(
            page_bytes=base.page_bytes,
            pages_per_block=base.pages_per_block,
            num_blocks=idx_blocks,
            overprovision=op,
            read_us=base.read_us,
            write_us=base.write_us,
            erase_us=base.erase_us,
            channels=base.channels,
        )
    return StorageHierarchy(
        HierarchyConfig(
            memory_bytes=mem,
            ssd_cache=cache_config.uses_ssd,
            ssd_config=ssd_cfg,
            index_on=index_on,
            index_ssd_config=index_ssd_cfg,
        ),
        seed=seed,
    )


class CacheManager:
    """Two-level cache over a storage hierarchy and an inverted index."""

    def __init__(
        self,
        config: CacheConfig,
        hierarchy: StorageHierarchy,
        index: InvertedIndex,
        processor: QueryProcessor | None = None,
        materialize_results: bool = False,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.index = index
        self.processor = processor or QueryProcessor(index, top_k=config.top_k)
        self.materialize_results = materialize_results
        self.clock = hierarchy.clock
        self.mem = hierarchy.memory
        self.ssd = hierarchy.ssd
        self.store = hierarchy.index_store
        self.stats = CacheStats()

        if config.uses_ssd and self.ssd is None:
            raise ValueError("cache config needs an SSD tier but the hierarchy has none")
        if config.uses_ssd and self.ssd.capacity_bytes < config.ssd_cache_bytes:
            raise ValueError(
                f"SSD too small: cache file needs {config.ssd_cache_bytes} B, "
                f"device offers {self.ssd.capacity_bytes} B"
            )

        cost_based = config.policy in (Policy.CBLRU, Policy.CBSLRU)
        self.selection = SelectionPolicy(
            block_bytes=config.block_bytes, tev=config.tev, cost_based=cost_based
        )

        # ---- L1 (memory) ----
        self.l1_results: LruList[tuple[int, ...], CachedResult] = LruList(config.replace_window)
        self.l1_lists: LruList[int, CachedList] = LruList(config.replace_window)
        self._l1_result_bytes = 0
        self._l1_list_bytes = 0

        # ---- L2 (SSD) ----
        self._rb_slot_sectors = -(-config.result_entry_bytes // SECTOR_BYTES)
        if config.uses_ssd:
            if cost_based:
                self.result_region = BlockRegion(
                    base_lba=0,
                    num_blocks=config.ssd_result_blocks,
                    block_bytes=config.block_bytes,
                )
                list_base = config.ssd_result_blocks * (config.block_bytes // SECTOR_BYTES)
                self.list_region = BlockRegion(
                    base_lba=list_base,
                    num_blocks=config.ssd_list_blocks,
                    block_bytes=config.block_bytes,
                )
                self.byte_result_region = None
                self.byte_list_region = None
            else:
                self.result_region = None
                self.list_region = None
                self.byte_result_region = ByteRegion(0, config.ssd_result_bytes)
                list_base = (config.ssd_result_bytes // SECTOR_BYTES)
                self.byte_list_region = ByteRegion(list_base, config.ssd_list_bytes)
        else:
            self.result_region = self.list_region = None
            self.byte_result_region = self.byte_list_region = None

        # Fig. 7a result mapping + Fig. 7b RB mapping.
        self.l2_result_map: dict[tuple[int, ...], CachedResult] = {}
        self.rb_map: dict[int, ResultBlock] = {}
        self.rb_lru: LruList[int, ResultBlock] = LruList(config.replace_window)
        # LRU baseline keeps per-entry recency instead of per-RB.
        self.l2_result_lru: LruList[tuple[int, ...], CachedResult] = LruList(config.replace_window)
        # Fig. 7c inverted-list mapping.
        self.l2_lists: LruList[int, CachedList] = LruList(config.replace_window)
        # CBSLRU static partitions (filled by warmup_static).
        self.static_results: dict[tuple[int, ...], CachedResult] = {}
        self.static_lists: dict[int, CachedList] = {}

        self.write_buffer = WriteBuffer(config.entries_per_rb)
        self._next_rb_id = 0

    # ------------------------------------------------------------------
    # Query management (QM)
    # ------------------------------------------------------------------

    def process_query(self, query: Query) -> QueryOutcome:
        """Run one query through the Table I flow."""
        t0 = self.clock.now_us
        key = query.key

        hit_level = self._lookup_result(key)
        if hit_level == 1:
            situation = Situation.S1
        elif hit_level == 2:
            situation = Situation.S3
        else:
            situation = self._compute_query(query)
        response = self.clock.now_us - t0
        self.stats.record_query(situation, response)
        return QueryOutcome(
            query=query,
            situation=situation,
            response_us=response,
            result_hit_level=hit_level,
        )

    def _expired(self, entry) -> bool:
        return entry.expired(self.clock.now_us, self.config.ttl_us)

    def _lookup_result(self, key: tuple[int, ...]) -> int:
        """Serve the query from the result caches if possible.

        Returns 1 for an L1 hit, 2 for an L2 hit, 0 for a miss.  In the
        dynamic scenario (ttl_us > 0), stale copies are discarded on the
        way down and the query recomputes from fresh index data.
        """
        cfg = self.config
        entry = self.l1_results.get(key)
        if entry is not None:
            if self._expired(entry):
                self.l1_results.pop(key)
                self._l1_result_bytes -= entry.nbytes
                self._drop_l2_result(key, trim=True)
                self.stats.expired_results += 1
            else:
                self.l1_results.touch(key)
                entry.touch()
                self.mem.read(0, entry.nbytes)
                self.stats.result_l1_hits += 1
                return 1

        # Entries staged in the write buffer still live in DRAM.
        staged = self.write_buffer.take(key)
        if staged is not None:
            if self._expired(staged):
                self.stats.expired_results += 1
            else:
                staged.touch()
                self.mem.read(0, staged.nbytes)
                self._admit_result_l1(staged, from_lower=True)
                self.stats.result_l1_hits += 1
                return 1

        if not cfg.uses_ssd:
            return 0

        static = self.static_results.get(key)
        if static is not None and not self._expired(static):
            self.ssd.read(static.lba, static.nbytes)
            static.touch()
            copy = CachedResult(query_key=key, nbytes=static.nbytes,
                                freq=static.freq, created_us=static.created_us)
            self._admit_result_l1(copy, from_lower=True)
            self.stats.result_l2_hits += 1
            return 2

        entry = self.l2_result_map.get(key)
        if entry is not None and self._expired(entry):
            self._drop_l2_result(key, trim=True)
            self.stats.expired_results += 1
            entry = None
        if entry is not None:
            self.ssd.read(entry.lba, entry.nbytes)
            entry.touch()
            copy = CachedResult(query_key=key, nbytes=entry.nbytes,
                                freq=entry.freq, created_us=entry.created_us)
            if self.config.scheme is Scheme.EXCLUSIVE:
                self._drop_l2_result(key, trim=True)
            else:
                # Hybrid/inclusive: the SSD copy turns REPLACEABLE but keeps
                # its mapping so a later eviction can skip the rewrite.
                entry.state = EntryState.REPLACEABLE
                if entry.rb_id is not None:
                    rb = self.rb_map[entry.rb_id]
                    if entry.slot is not None and rb.is_valid(entry.slot):
                        rb.clear_valid(entry.slot)
                    if entry.rb_id in self.rb_lru:
                        self.rb_lru.touch(entry.rb_id)
                elif key in self.l2_result_lru:
                    self.l2_result_lru.touch(key)
            self._admit_result_l1(copy, from_lower=True)
            self.stats.result_l2_hits += 1
            return 2
        return 0

    def _compute_query(self, query: Query) -> Situation:
        """Result miss: fetch lists, score, cache the new result entry."""
        self.stats.result_misses += 1
        plan = self.processor.plan(query)
        used_mem = used_ssd = used_hdd = False
        for demand in plan.demands:
            src_mem, src_ssd, src_hdd = self._fetch_list(
                demand.term_id, demand.needed_bytes, demand.list_bytes, demand.pu
            )
            used_mem |= src_mem
            used_ssd |= src_ssd
            used_hdd |= src_hdd

        self.clock.advance(self.processor.cpu_time_us(plan))
        result = self.processor.execute(plan, materialize=self.materialize_results)
        entry = CachedResult(
            query_key=query.key,
            nbytes=self.config.result_entry_bytes,
            created_us=self.clock.now_us,
        )
        self._admit_result_l1(entry, from_lower=False)
        self._maybe_refresh_static_result(query.key, entry)
        if not (used_mem or used_ssd or used_hdd):
            # Degenerate: every demand was zero bytes — treat as memory.
            used_mem = True
        return Situation.for_lists(used_mem, used_ssd, used_hdd)

    def _maybe_refresh_static_result(self, key: tuple[int, ...],
                                     fresh: CachedResult) -> None:
        """Rewrite a stale pinned result with the just-computed data."""
        static = self.static_results.get(key)
        if static is None or not self._expired(static):
            return
        self.ssd.write(static.lba, static.nbytes)
        static.created_us = fresh.created_us
        self.stats.static_refreshes += 1

    def _fetch_list(
        self, term_id: int, needed: int, total_bytes: int, pu: float
    ) -> tuple[bool, bool, bool]:
        """Bring the traversed prefix of one list in; returns source flags."""
        covered = 0
        src_mem = src_ssd = src_hdd = False

        l1 = self.l1_lists.get(term_id)
        if l1 is not None and self._expired(l1):
            self.l1_lists.pop(term_id)
            self._l1_list_bytes -= l1.cached_bytes
            self._drop_l2_list(term_id, trim=self.config.policy is not Policy.LRU)
            self.stats.expired_lists += 1
            l1 = None
        if l1 is not None:
            self.l1_lists.touch(term_id)
            l1.touch()
            served = min(needed, l1.cached_bytes)
            if served > 0:
                self.mem.read(0, served)
                src_mem = True
                covered = served
            if covered >= needed:
                self.stats.list_l1_hits += 1
                self._admit_list_l1(term_id, needed, total_bytes, pu, new_access=False)
                return src_mem, src_ssd, src_hdd

        stale_static: CachedList | None = None
        if self.config.uses_ssd:
            l2 = self.static_lists.get(term_id)
            is_static = l2 is not None
            if is_static and self._expired(l2):
                # Pinned data is refreshed in place after the HDD re-read.
                stale_static = l2
                self.stats.expired_lists += 1
                l2 = None
                is_static = False
            if l2 is None and not stale_static:
                l2 = self.l2_lists.get(term_id)
                if l2 is not None and self._expired(l2):
                    self._drop_l2_list(
                        term_id, trim=self.config.policy is not Policy.LRU
                    )
                    self.stats.expired_lists += 1
                    l2 = None
            if l2 is not None and l2.cached_bytes > covered:
                take = min(needed, l2.cached_bytes) - covered
                self._read_l2_list_bytes(l2, covered, take)
                src_ssd = True
                covered += take
                l2.touch()
                if not is_static:
                    self.l2_lists.touch(term_id)
                    if self.config.scheme is Scheme.EXCLUSIVE:
                        self._drop_l2_list(term_id, trim=True)
                    elif self.config.policy is not Policy.LRU:
                        # The baseline has no replaceable-state tracking:
                        # a read-back entry stays NORMAL and gets fully
                        # rewritten on its next eviction (Section VI.C).
                        l2.state = EntryState.REPLACEABLE

        if covered < needed:
            src_hdd = True
            self._read_store_tail(term_id, needed, covered)
            if covered > 0:
                self.stats.list_partial_hits += 1
            else:
                self.stats.list_misses += 1
        elif src_ssd:
            self.stats.list_l2_hits += 1

        if stale_static is not None and src_hdd:
            # Rewrite the pinned blocks with the fresh data just read.
            for b in stale_static.blocks:
                self.ssd.write(self.list_region.lba_of(b), self.config.block_bytes)
            stale_static.created_us = self.clock.now_us
            self.stats.static_refreshes += 1

        self._admit_list_l1(term_id, needed, total_bytes, pu, new_access=l1 is None)
        return src_mem, src_ssd, src_hdd

    def _read_l2_list_bytes(self, entry: CachedList, offset: int, nbytes: int) -> None:
        """Read ``nbytes`` of a cached list starting at ``offset`` from SSD."""
        sb = self.config.block_bytes
        remaining = nbytes
        pos = offset
        while remaining > 0:
            if entry.blocks:
                blk = entry.blocks[min(pos // sb, len(entry.blocks) - 1)]
                lba = self.list_region.lba_of(blk) + (pos % sb) // SECTOR_BYTES
            else:
                assert entry.lba_byte is not None, "SSD list entry without placement"
                lba = entry.lba_byte + pos // SECTOR_BYTES
            chunk = min(remaining, sb - (pos % sb))
            self.ssd.read(lba, chunk)
            pos += chunk
            remaining -= chunk

    def _read_store_tail(self, term_id: int, needed: int, covered: int) -> None:
        """Read the uncached tail of a list from the index store (HDD)."""
        for lba, nbytes in self.index.layout.chunk_reads(term_id, needed):
            # Skip chunks entirely satisfied by the cached prefix.
            chunk_start = (lba - self.index.layout.extent(term_id).lba) * SECTOR_BYTES
            if chunk_start + nbytes <= covered:
                continue
            self.store.read(lba, nbytes)

    # ------------------------------------------------------------------
    # L1 admission and eviction (replacement management, memory side)
    # ------------------------------------------------------------------

    def _admit_result_l1(self, entry: CachedResult, from_lower: bool) -> None:
        """Insert a result entry into the memory result cache."""
        cfg = self.config
        if entry.nbytes > cfg.mem_result_bytes:
            return  # cache too small for even one entry
        while self._l1_result_bytes + entry.nbytes > cfg.mem_result_bytes:
            _, victim = self.l1_results.pop_lru()
            self._l1_result_bytes -= victim.nbytes
            self._on_result_evicted(victim)
        self.l1_results.insert(entry.query_key, entry)
        self._l1_result_bytes += entry.nbytes
        if cfg.scheme is Scheme.INCLUSIVE and cfg.uses_ssd and not from_lower:
            # Write-through: an inclusive L2 always holds what L1 holds.
            self._push_result_to_l2(entry)

    def _on_result_evicted(self, victim: CachedResult) -> None:
        cfg = self.config
        if not cfg.uses_ssd or victim.query_key in self.static_results:
            return
        if cfg.scheme is Scheme.INCLUSIVE:
            return  # already written through
        if cfg.policy is Policy.LRU:
            self._lru_result_to_ssd(victim)
            return
        already = self._l2_result_copy_usable(victim.query_key)
        if already:
            # Re-validate the REPLACEABLE SSD copy instead of rewriting.
            entry = self.l2_result_map[victim.query_key]
            entry.state = EntryState.NORMAL
            entry.freq = max(entry.freq, victim.freq)
            if entry.rb_id is not None:
                rb = self.rb_map[entry.rb_id]
                rb.set_valid(entry.slot, victim.query_key)
            self.stats.ssd_writes_avoided += 1
            self.write_buffer.dropped_replaceable += 1
            return
        batch = self.write_buffer.add(victim, already_on_ssd=False)
        if batch is not None:
            self._flush_result_block(batch)

    def _l2_result_copy_usable(self, key: tuple[int, ...]) -> bool:
        entry = self.l2_result_map.get(key)
        return entry is not None and entry.state is EntryState.REPLACEABLE

    def _admit_list_l1(
        self, term_id: int, needed: int, total_bytes: int, pu: float, new_access: bool
    ) -> None:
        """Insert/grow a list entry in the memory list cache."""
        cfg = self.config
        chunk = self.index.layout.chunk_bytes
        target = min(total_bytes, -(-needed // chunk) * chunk)
        if target > cfg.mem_list_bytes:
            # A single list larger than the whole cache is clamped to the
            # largest chunk multiple that fits (or skipped entirely).
            target = cfg.mem_list_bytes // chunk * chunk
            if target <= 0:
                return
        existing = self.l1_lists.get(term_id)
        if existing is not None:
            growth = max(0, target - existing.cached_bytes)
            existing.cached_bytes = max(existing.cached_bytes, target)
            # Running means keep PU close to the term's realized behaviour.
            existing.pu += (pu - existing.pu) * 0.2
            existing.mean_needed_bytes += (needed - existing.mean_needed_bytes) * 0.25
            self._l1_list_bytes += growth
            self.l1_lists.touch(term_id)
        else:
            entry = CachedList(
                term_id=term_id,
                cached_bytes=target,
                total_bytes=total_bytes,
                pu=pu,
                mean_needed_bytes=float(needed),
                created_us=self.clock.now_us,
            )
            self.l1_lists.insert(term_id, entry)
            self._l1_list_bytes += target
            if cfg.scheme is Scheme.INCLUSIVE and cfg.uses_ssd:
                self._push_list_to_l2(entry)
        self._evict_l1_lists_to_fit(protect=term_id)

    def _evict_l1_lists_to_fit(self, protect: int | None = None) -> None:
        cfg = self.config
        while self._l1_list_bytes > cfg.mem_list_bytes and len(self.l1_lists) > 1:
            victim_key = self._pick_l1_list_victim(protect)
            if victim_key is None:
                break
            victim = self.l1_lists.pop(victim_key)
            self._l1_list_bytes -= victim.cached_bytes
            self._on_list_evicted(victim)

    def _pick_l1_list_victim(self, protect: int | None) -> int | None:
        """LRU baseline: least recent.  CBLRU/CBSLRU: min EV in the RFR (Fig. 12)."""
        cfg = self.config
        if cfg.policy is Policy.LRU:
            for key, _ in self.l1_lists.items_lru_order():
                if key != protect:
                    return key
            return None
        best_key = None
        best_ev = float("inf")
        for key, entry in self.l1_lists.replace_first_region():
            if key == protect:
                continue
            sc = max(1, ssd_cache_blocks(entry.cached_bytes, entry.formula1_pu,
                                         cfg.block_bytes))
            ev = efficiency_value(entry.freq, sc)
            if ev < best_ev:
                best_ev = ev
                best_key = key
        if best_key is None:
            for key, _ in self.l1_lists.items_lru_order():
                if key != protect:
                    return key
        return best_key

    def _on_list_evicted(self, victim: CachedList) -> None:
        cfg = self.config
        if not cfg.uses_ssd or victim.term_id in self.static_lists:
            return
        if cfg.scheme is Scheme.INCLUSIVE:
            return
        self._push_list_to_l2(victim)

    # ------------------------------------------------------------------
    # L2 result cache (SSD side)
    # ------------------------------------------------------------------

    def _push_result_to_l2(self, entry: CachedResult) -> None:
        """Inclusive-scheme write-through of one result entry."""
        if self.config.policy is Policy.LRU:
            self._lru_result_to_ssd(entry)
        else:
            batch = self.write_buffer.add(
                CachedResult(query_key=entry.query_key, nbytes=entry.nbytes,
                             freq=entry.freq, created_us=entry.created_us),
                already_on_ssd=self._l2_result_copy_usable(entry.query_key),
            )
            if batch is not None:
                self._flush_result_block(batch)

    def _flush_result_block(self, batch: list[CachedResult]) -> None:
        """Assemble a full RB and write it with one sequential block write."""
        cfg = self.config
        rb = self._take_result_block()
        if rb is None:
            return  # result region has zero capacity
        for slot, entry in enumerate(batch):
            # Drop any stale mapping of the same key elsewhere.
            old = self.l2_result_map.pop(entry.query_key, None)
            if old is not None and old.rb_id is not None and old.rb_id != rb.rb_id:
                old_rb = self.rb_map.get(old.rb_id)
                if old_rb is not None and old.slot is not None and old_rb.is_valid(old.slot):
                    old_rb.clear_valid(old.slot)
            entry.rb_id = rb.rb_id
            entry.slot = slot
            entry.lba = rb.lba + slot * self._rb_slot_sectors
            entry.state = EntryState.NORMAL
            rb.set_valid(slot, entry.query_key)
            self.l2_result_map[entry.query_key] = entry
        self.ssd.write(rb.lba, cfg.block_bytes)
        self.stats.ssd_result_writes += 1
        self.rb_lru.insert(rb.rb_id, rb)

    def _take_result_block(self) -> ResultBlock | None:
        """A free RB, or the Fig. 11 victim (max IREN in the RFR)."""
        cfg = self.config
        region = self.result_region
        if region is None or region.num_blocks == 0:
            return None
        blocks = region.alloc(1)
        if blocks is not None:
            rb = ResultBlock(
                rb_id=self._next_rb_id,
                lba=region.lba_of(blocks[0]),
                num_slots=cfg.entries_per_rb,
            )
            rb._region_block = blocks[0]  # type: ignore[attr-defined]
            self.rb_map[rb.rb_id] = rb
            self._next_rb_id += 1
            return rb
        victim_id = None
        best_iren = -1
        for rb_id, rb in self.rb_lru.replace_first_region():
            if rb.iren > best_iren:
                best_iren = rb.iren
                victim_id = rb_id
        if victim_id is None:
            victim_id, _ = self.rb_lru.peek_lru()
        rb = self.rb_lru.pop(victim_id)
        for slot in range(rb.num_slots):
            key = rb.entries[slot]
            if key is not None:
                stale = self.l2_result_map.get(key)
                if stale is not None and stale.rb_id == rb.rb_id:
                    del self.l2_result_map[key]
            rb.entries[slot] = None
        rb.flags = 0
        return rb

    def _lru_result_to_ssd(self, victim: CachedResult) -> None:
        """Baseline path: write the entry alone at whatever offset fits."""
        region = self.byte_result_region
        if region is None or region.size_sectors == 0:
            return
        old = self.l2_result_map.pop(victim.query_key, None)
        if old is not None and old.lba is not None:
            region.free(old.lba, old.nbytes)
            if victim.query_key in self.l2_result_lru:
                self.l2_result_lru.pop(victim.query_key)
        lba = region.alloc(victim.nbytes)
        while lba is None and len(self.l2_result_lru) > 0:
            key, evicted = self.l2_result_lru.pop_lru()
            self.l2_result_map.pop(key, None)
            region.free(evicted.lba, evicted.nbytes)
            lba = region.alloc(victim.nbytes)
        if lba is None:
            return
        victim.lba = lba
        victim.rb_id = None
        victim.slot = None
        victim.state = EntryState.NORMAL
        self.ssd.write(lba, victim.nbytes)
        self.stats.ssd_result_writes += 1
        self.l2_result_map[victim.query_key] = victim
        self.l2_result_lru.insert(victim.query_key, victim)

    def _drop_l2_result(self, key: tuple[int, ...], trim: bool) -> None:
        entry = self.l2_result_map.pop(key, None)
        if entry is None:
            return
        if entry.rb_id is not None:
            rb = self.rb_map.get(entry.rb_id)
            if rb is not None and entry.slot is not None and rb.is_valid(entry.slot):
                rb.clear_valid(entry.slot)
                rb.entries[entry.slot] = None
        elif entry.lba is not None and self.byte_result_region is not None:
            self.byte_result_region.free(entry.lba, entry.nbytes)
            if key in self.l2_result_lru:
                self.l2_result_lru.pop(key)
        if trim and entry.lba is not None:
            self.ssd.trim(entry.lba, entry.nbytes)

    # ------------------------------------------------------------------
    # L2 inverted-list cache (SSD side)
    # ------------------------------------------------------------------

    def _push_list_to_l2(self, victim: CachedList) -> None:
        cfg = self.config
        decision = self.selection.select_list(
            si_bytes=victim.cached_bytes, pu=victim.formula1_pu, freq=victim.freq
        )
        if not decision.admit:
            self.stats.discarded_by_tev += 1
            return
        existing = self.l2_lists.get(victim.term_id)
        if existing is not None:
            covers = existing.cached_bytes >= min(
                victim.total_bytes, decision.sc_blocks * cfg.block_bytes
            )
            if (existing.state is EntryState.REPLACEABLE and covers
                    and cfg.policy is not Policy.LRU):
                # The data is still on flash: re-validate, skip the write.
                existing.state = EntryState.NORMAL
                existing.freq = max(existing.freq, victim.freq)
                self.l2_lists.touch(victim.term_id)
                self.stats.ssd_writes_avoided += 1
                return
            self._drop_l2_list(victim.term_id, trim=cfg.policy is not Policy.LRU)

        if cfg.policy is Policy.LRU:
            self._lru_list_to_ssd(victim)
        else:
            self._cb_list_to_ssd(victim, decision.sc_blocks)

    def _cb_list_to_ssd(self, victim: CachedList, sc_blocks: int) -> None:
        """Cost-based path: whole-block placement with Fig. 13 replacement."""
        cfg = self.config
        region = self.list_region
        if region is None or sc_blocks == 0 or sc_blocks > region.num_blocks:
            return
        if region.free_count < sc_blocks:
            self._free_l2_list_space(sc_blocks)
        blocks = region.alloc(sc_blocks)
        if blocks is None:
            return
        cached = min(victim.total_bytes, sc_blocks * cfg.block_bytes,
                     victim.cached_bytes)
        entry = CachedList(
            term_id=victim.term_id,
            cached_bytes=cached,
            total_bytes=victim.total_bytes,
            pu=victim.pu,
            freq=victim.freq,
            blocks=blocks,
            created_us=victim.created_us,
        )
        for b in blocks:
            self.ssd.write(region.lba_of(b), cfg.block_bytes)
        self.stats.ssd_list_writes += 1
        self.l2_lists.insert(victim.term_id, entry)

    def _free_l2_list_space(self, sc_needed: int) -> None:
        """The staged victim search of Fig. 13.

        1) REPLACEABLE entries in the replace-first region; 2) a NORMAL
        RFR entry of exactly the needed size; 3) assembling several RFR
        entries; 4) the whole-list fallback.
        """
        region = self.list_region
        # Stage 1: replaceable entries in the RFR are free wins.
        for key, entry in self.l2_lists.replace_first_region():
            if region.free_count >= sc_needed:
                return
            if entry.state is EntryState.REPLACEABLE:
                self._drop_l2_list(key, trim=True)
                self.stats.evict_stage_replaceable += 1
        if region.free_count >= sc_needed:
            return
        # Stage 2: a NORMAL RFR entry of exactly the missing size.
        deficit = sc_needed - region.free_count
        for key, entry in self.l2_lists.replace_first_region():
            if len(entry.blocks) == deficit:
                self._drop_l2_list(key, trim=True)
                self.stats.evict_stage_size_match += 1
                return
        # Stage 3: assemble several RFR entries.
        for key, _ in self.l2_lists.replace_first_region():
            if region.free_count >= sc_needed:
                return
            self._drop_l2_list(key, trim=True)
            self.stats.evict_stage_assemble += 1
        # Stage 4: widen to the whole LRU list (the paper's worst case).
        for key, _ in list(self.l2_lists.items_lru_order()):
            if region.free_count >= sc_needed:
                return
            self._drop_l2_list(key, trim=True)
            self.stats.evict_stage_fallback += 1

    def _lru_list_to_ssd(self, victim: CachedList) -> None:
        """Baseline path: byte-granular placement, plain LRU eviction."""
        region = self.byte_list_region
        if region is None or region.size_sectors == 0:
            return
        nbytes = victim.cached_bytes
        if nbytes > region.size_sectors * SECTOR_BYTES:
            return
        lba = region.alloc(nbytes)
        while lba is None and len(self.l2_lists) > 0:
            key, evicted = self.l2_lists.pop_lru()
            region.free(evicted.lba_byte, evicted.cached_bytes)  # type: ignore[attr-defined]
            lba = region.alloc(nbytes)
        if lba is None:
            return
        entry = CachedList(
            term_id=victim.term_id,
            cached_bytes=nbytes,
            total_bytes=victim.total_bytes,
            pu=victim.pu,
            freq=victim.freq,
            created_us=victim.created_us,
        )
        entry.lba_byte = lba
        self.ssd.write(lba, nbytes)
        self.stats.ssd_list_writes += 1
        self.l2_lists.insert(victim.term_id, entry)

    def _drop_l2_list(self, term_id: int, trim: bool) -> None:
        entry = self.l2_lists.get(term_id)
        if entry is None:
            return
        self.l2_lists.pop(term_id)
        cfg = self.config
        if entry.blocks:
            region = self.list_region
            if trim:
                for b in entry.blocks:
                    self.ssd.trim(region.lba_of(b), cfg.block_bytes)
            region.free(entry.blocks)
            entry.blocks = []
        elif hasattr(entry, "lba_byte"):
            if trim:
                self.ssd.trim(entry.lba_byte, entry.cached_bytes)
            self.byte_list_region.free(entry.lba_byte, entry.cached_bytes)

    # ------------------------------------------------------------------
    # CBSLRU static partition (Section VI.C.2)
    # ------------------------------------------------------------------

    def warmup_static(self, log: QueryLog, analyze_queries: int | None = None) -> dict:
        """Fill the static partitions by analysing a query log.

        The most frequent queries and the highest-EV terms are written to
        SSD once and pinned: no eviction, no replacement ever touches
        them.  Returns a summary dict (entries placed, blocks used).

        By default only the first half of the log is analysed (yesterday's
        log predicting today's traffic); queries seen once are never
        pinned — a singleton tells the analysis nothing about the future.
        """
        cfg = self.config
        if cfg.policy is not Policy.CBSLRU:
            raise ValueError("warmup_static only applies to the CBSLRU policy")
        if not cfg.uses_ssd:
            raise ValueError("warmup_static needs an SSD tier")

        n = analyze_queries if analyze_queries is not None else len(log) // 2
        qfreq: dict[tuple[int, ...], int] = {}
        tfreq: dict[int, int] = {}
        for query in log.head(n):
            qfreq[query.key] = qfreq.get(query.key, 0) + 1
            for t in query.key:
                tfreq[t] = tfreq.get(t, 0) + 1

        placed_results = 0
        rc_budget = int(cfg.ssd_result_blocks * cfg.static_fraction)
        top_queries = sorted(
            ((k, f) for k, f in qfreq.items() if f >= 2), key=lambda kv: -kv[1]
        )
        qi = 0
        for _ in range(rc_budget):
            blocks = self.result_region.alloc(1)
            if blocks is None:
                break
            lba = self.result_region.lba_of(blocks[0])
            wrote_any = False
            for slot in range(cfg.entries_per_rb):
                if qi >= len(top_queries):
                    break
                key, freq = top_queries[qi]
                qi += 1
                self.static_results[key] = CachedResult(
                    query_key=key,
                    nbytes=cfg.result_entry_bytes,
                    freq=freq,
                    lba=lba + slot * self._rb_slot_sectors,
                    state=EntryState.NORMAL,
                    static=True,
                    created_us=self.clock.now_us,
                )
                placed_results += 1
                wrote_any = True
            if wrote_any:
                self.ssd.write(lba, cfg.block_bytes)
            if qi >= len(top_queries):
                break

        placed_lists = 0
        lc_budget = int(cfg.ssd_list_blocks * cfg.static_fraction)
        chunk = self.index.layout.chunk_bytes
        ranked: list[tuple[float, int, int, int]] = []
        for term_id, freq in tfreq.items():
            if freq < 2:
                continue
            info = self.index.lexicon.term(term_id)
            # Static entries hold the whole expected used prefix: the
            # analysis already tells us what a typical query needs.
            si = min(info.list_bytes,
                     -(-int(info.list_bytes * info.utilization) // chunk) * chunk)
            sc = ssd_cache_blocks(si, 1.0, cfg.block_bytes)
            if sc == 0:
                continue
            ranked.append((efficiency_value(freq, sc), term_id, sc, freq))
        ranked.sort(reverse=True)
        used = 0
        for ev, term_id, sc, freq in ranked:
            if ev < cfg.tev:
                break
            if used + sc > lc_budget:
                continue
            blocks = self.list_region.alloc(sc)
            if blocks is None:
                break
            info = self.index.lexicon.term(term_id)
            self.static_lists[term_id] = CachedList(
                term_id=term_id,
                cached_bytes=min(info.list_bytes, sc * cfg.block_bytes),
                total_bytes=info.list_bytes,
                pu=info.utilization,
                freq=freq,
                blocks=blocks,
                static=True,
                created_us=self.clock.now_us,
            )
            for b in blocks:
                self.ssd.write(self.list_region.lba_of(b), cfg.block_bytes)
            used += sc
            placed_lists += 1

        return {
            "static_results": placed_results,
            "static_result_blocks_budget": rc_budget,
            "static_lists": placed_lists,
            "static_list_blocks": used,
            "static_list_blocks_budget": lc_budget,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency (used by property tests).

        * L1 byte accounting matches the entries actually held;
        * capacities are respected;
        * SSD list blocks are disjoint across entries and within regions;
        * every valid RB slot maps back to a result entry and vice versa.
        """
        cfg = self.config
        l1_result_bytes = sum(e.nbytes for _, e in self.l1_results.items_lru_order())
        if l1_result_bytes != self._l1_result_bytes:
            raise AssertionError("L1 result byte accounting out of sync")
        if l1_result_bytes > cfg.mem_result_bytes:
            raise AssertionError("L1 result cache over capacity")
        l1_list_bytes = sum(e.cached_bytes for _, e in self.l1_lists.items_lru_order())
        if l1_list_bytes != self._l1_list_bytes:
            raise AssertionError("L1 list byte accounting out of sync")
        if l1_list_bytes > cfg.mem_list_bytes and len(self.l1_lists) > 1:
            raise AssertionError("L1 list cache over capacity")

        if not cfg.uses_ssd:
            return

        # Block-region consistency (cost-based placement).
        if self.list_region is not None:
            held: list[int] = []
            for _, entry in self.l2_lists.items_lru_order():
                held.extend(entry.blocks)
            for entry in self.static_lists.values():
                held.extend(entry.blocks)
            if len(held) != len(set(held)):
                raise AssertionError("SSD list block allocated twice")
            if len(held) + self.list_region.free_count > self.list_region.num_blocks:
                raise AssertionError("SSD list region block count leak")

        # RB bitmap <-> result-map agreement.
        for rb_id, rb in self.rb_map.items():
            for slot in range(rb.num_slots):
                key = rb.entries[slot]
                if rb.is_valid(slot):
                    entry = self.l2_result_map.get(key)
                    if entry is None or entry.rb_id != rb_id or entry.slot != slot:
                        raise AssertionError(
                            f"valid RB slot ({rb_id}, {slot}) has no matching "
                            "result mapping"
                        )
        for key, entry in self.l2_result_map.items():
            if entry.rb_id is not None and entry.state is EntryState.NORMAL:
                rb = self.rb_map.get(entry.rb_id)
                if rb is None or not rb.is_valid(entry.slot):
                    raise AssertionError(
                        f"NORMAL result mapping {key} points at an invalid RB slot"
                    )

    def occupancy(self) -> dict:
        """Current cache occupancy for inspection and tests."""
        return {
            "l1_result_bytes": self._l1_result_bytes,
            "l1_list_bytes": self._l1_list_bytes,
            "l1_results": len(self.l1_results),
            "l1_lists": len(self.l1_lists),
            "l2_results": len(self.l2_result_map),
            "l2_lists": len(self.l2_lists),
            "static_results": len(self.static_results),
            "static_lists": len(self.static_lists),
            "write_buffer": len(self.write_buffer),
        }
