"""The cache manager (Fig. 2): a facade over the layered caches.

The paper's system is wired together here, but the behaviour lives in
composable layers:

* :class:`repro.core.result_cache.ResultCache` — the L1<->L2 result flow
  (memory entries, the write buffer, SSD result blocks, static results);
* :class:`repro.core.list_cache.ListCache` — the L1<->L2 inverted-list
  flow (memory prefixes, the SSD list region, static lists, HDD tails);
* :mod:`repro.core.policies` — pluggable admission (Formula 1/2 + TEV)
  and replacement (LRU / CBLRU / CBSLRU, or anything registered);
* :class:`repro.core.events.CacheEvents` — the observability seam that
  :class:`~repro.core.stats.StatsRecorder`, cluster shards and custom
  subscribers consume instead of reaching into cache internals.

``process_query`` runs the full Table I flow for one query and charges
every device access to the shared virtual clock, so mean response time,
throughput, hit ratios, SSD erase counts and the situation matrix all fall
out of one replay loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import CacheConfig
from repro.core.entries import CachedResult
from repro.core.events import CacheEvents
from repro.core.list_cache import ListCache
from repro.core.policies import create_policy
from repro.core.result_cache import ResultCache
from repro.core.stats import CacheStats, Situation, StatsRecorder
from repro.engine.index import InvertedIndex
from repro.obs.audit import NULL_AUDIT
from repro.obs.tracer import NULL_TRACER
from repro.engine.processor import QueryProcessor
from repro.engine.query import Query
from repro.engine.querylog import QueryLog
from repro.flash.constants import FlashConfig
from repro.storage.hierarchy import HierarchyConfig, StorageHierarchy

__all__ = ["QueryOutcome", "CacheManager", "build_hierarchy_for"]


@dataclass(frozen=True)
class QueryOutcome:
    """What happened to one query."""

    query: Query
    situation: Situation
    response_us: float
    #: 1 = L1 result hit, 2 = L2 result hit, 0 = computed
    result_hit_level: int


def build_hierarchy_for(
    cache_config: CacheConfig,
    index: InvertedIndex | None = None,
    index_on: str = "hdd",
    memory_bytes: int | None = None,
    flash_overrides: dict | None = None,
    seed: int = 0,
    clock=None,
    device_suffix: str = "",
) -> StorageHierarchy:
    """Build a storage hierarchy sized for a cache configuration.

    The SSD's flash geometry is derived from the cache-file size plus
    ~12 % over-provisioning, so garbage collection has realistic headroom
    regardless of the experiment's cache capacity.  ``clock`` and
    ``device_suffix`` let several hierarchies (cluster shards under the
    concurrency kernel) share one simulated timeline with distinct
    device/channel names.
    """
    overrides = dict(flash_overrides or {})
    op = overrides.pop("overprovision", 0.12)
    base = FlashConfig(**overrides) if overrides else FlashConfig()
    cache_blocks = max(1, cache_config.ssd_cache_bytes // base.block_bytes)
    num_blocks = int(cache_blocks / (1.0 - op)) + 4
    ssd_cfg = replace(base, num_blocks=num_blocks, overprovision=op)
    mem = memory_bytes or max(
        64 * 1024 * 1024,
        2 * (cache_config.mem_result_bytes + cache_config.mem_list_bytes),
    )
    index_ssd_cfg = None
    if index_on == "ssd":
        index_bytes = index.index_bytes if index is not None else 2**30
        idx_blocks = int((index_bytes // base.block_bytes + 1) / (1.0 - op)) + 4
        index_ssd_cfg = replace(base, num_blocks=idx_blocks, overprovision=op)
    return StorageHierarchy(
        HierarchyConfig(
            memory_bytes=mem,
            ssd_cache=cache_config.uses_ssd,
            ssd_config=ssd_cfg,
            index_on=index_on,
            index_ssd_config=index_ssd_cfg,
        ),
        seed=seed,
        clock=clock,
        device_suffix=device_suffix,
    )


class CacheManager:
    """Two-level cache over a storage hierarchy and an inverted index.

    A thin facade: query management (the Table I flow) plus the wiring of
    the result/list cache layers, the replacement policy resolved from
    ``config.policy`` via :mod:`repro.core.policies`, and the event bus.
    """

    def __init__(
        self,
        config: CacheConfig,
        hierarchy: StorageHierarchy,
        index: InvertedIndex,
        processor: QueryProcessor | None = None,
        materialize_results: bool = False,
        telemetry=None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.index = index
        self.processor = processor or QueryProcessor(index, top_k=config.top_k)
        self.materialize_results = materialize_results
        self.clock = hierarchy.clock
        self.mem = hierarchy.memory
        self.ssd = hierarchy.ssd
        self.store = hierarchy.index_store
        self.stats = CacheStats()
        self.events = CacheEvents()
        self._stats_recorder = StatsRecorder(self.stats, self.events)
        # Observability: the telemetry bundle (repro.obs) is optional and
        # must never perturb the simulation — the tracer and registry only
        # observe clock time and events the run produces anyway.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind_clock(self.clock)
            telemetry.observe_cache_events(self.events)
            self._tracer = telemetry.tracer
            hierarchy.attach_tracer(self._tracer)
            self._audit = getattr(telemetry, "audit", NULL_AUDIT)
            hierarchy.attach_audit(self._audit)
            observe_flash = getattr(telemetry, "observe_flash", None)
            if observe_flash is not None:
                observe_flash(self.ssd)
                if hasattr(self.store, "ftl") and self.store is not self.ssd:
                    observe_flash(self.store)
            observe_stats = getattr(telemetry, "observe_stats", None)
            if observe_stats is not None:
                observe_stats(self.stats)
            observe_occupancy = getattr(telemetry, "observe_occupancy", None)
            if observe_occupancy is not None:
                observe_occupancy(self.occupancy)
        else:
            self._tracer = NULL_TRACER
            self._audit = NULL_AUDIT

        if config.uses_ssd and self.ssd is None:
            raise ValueError("cache config needs an SSD tier but the hierarchy has none")
        if config.uses_ssd and self.ssd.capacity_bytes < config.ssd_cache_bytes:
            raise ValueError(
                f"SSD too small: cache file needs {config.ssd_cache_bytes} B, "
                f"device offers {self.ssd.capacity_bytes} B"
            )

        self.policy = create_policy(config.policy)
        # Policies are instantiated fresh per manager (create_policy), so
        # handing this instance the manager's audit log is safe.
        self.policy.audit = self._audit
        self.selection = self.policy.build_admission(config)
        self.result_cache = ResultCache(
            config=config,
            policy=self.policy,
            clock=self.clock,
            mem=self.mem,
            ssd=self.ssd,
            stats=self.stats,
            events=self.events,
            tracer=self._tracer,
            audit=self._audit,
        )
        self.list_cache = ListCache(
            config=config,
            policy=self.policy,
            selection=self.selection,
            index=index,
            clock=self.clock,
            mem=self.mem,
            ssd=self.ssd,
            store=self.store,
            stats=self.stats,
            events=self.events,
            tracer=self._tracer,
            audit=self._audit,
        )

    # ------------------------------------------------------------------
    # Query management (QM)
    # ------------------------------------------------------------------

    def process_query(self, query: Query) -> QueryOutcome:
        """Run one query through the Table I flow.

        With telemetry attached, the whole flow runs inside a ``query``
        span and the per-device busy-time deltas become the per-stage
        latency histograms (``stage_latency_us``); stage durations sum
        exactly to the query's response time.
        """
        tel = self.telemetry
        if tel is None:
            return self._process_query(query)
        busy0 = tel.busy_snapshot(self.clock)
        qid = self.stats.queries
        with self._tracer.span("query", qid=qid,
                               terms=len(query.key)) as span:
            outcome = self._process_query(query)
            span.set(situation=outcome.situation.name,
                     hit_level=outcome.result_hit_level)
        tel.record_query(outcome.situation.name, outcome.response_us,
                         busy0, self.clock, qid=qid,
                         span_id=getattr(span, "span_id", None))
        return outcome

    def _process_query(self, query: Query) -> QueryOutcome:
        t0 = self.clock.now_us
        key = query.key

        hit_level = self._lookup_result(key)
        if hit_level == 1:
            situation = Situation.S1
        elif hit_level == 2:
            situation = Situation.S3
        else:
            situation = self._compute_query(query)
        response = self.clock.now_us - t0
        self.stats.record_query(situation, response)
        return QueryOutcome(
            query=query,
            situation=situation,
            response_us=response,
            result_hit_level=hit_level,
        )

    def _lookup_result(self, key: tuple[int, ...]) -> int:
        return self.result_cache.lookup(key)

    def _compute_query(self, query: Query) -> Situation:
        """Result miss: fetch lists, score, cache the new result entry."""
        self.stats.result_misses += 1
        plan = self.processor.plan(query)
        used_mem = used_ssd = used_hdd = False
        for demand in plan.demands:
            src_mem, src_ssd, src_hdd = self._fetch_list(
                demand.term_id, demand.needed_bytes, demand.list_bytes, demand.pu
            )
            used_mem |= src_mem
            used_ssd |= src_ssd
            used_hdd |= src_hdd

        # charge=False: CPU attribution stays the response-time residual
        # (stage histograms derive it), but under a kernel the scoring
        # work still contends for the shard's CPU lanes.
        self.clock.consume(self.hierarchy.cpu_channel,
                           self.processor.cpu_time_us(plan), charge=False)
        self.processor.execute(plan, materialize=self.materialize_results)
        entry = CachedResult(
            query_key=query.key,
            nbytes=self.config.result_entry_bytes,
            created_us=self.clock.now_us,
        )
        self._admit_result_l1(entry, from_lower=False)
        self._maybe_refresh_static_result(query.key, entry)
        if not (used_mem or used_ssd or used_hdd):
            # Degenerate: every demand was zero bytes — treat as memory.
            used_mem = True
        return Situation.for_lists(used_mem, used_ssd, used_hdd)

    # Delegates kept for subclasses (e.g. ThreeLevelCacheManager) and
    # behaviour parity with the pre-decomposition manager.

    def _fetch_list(
        self, term_id: int, needed: int, total_bytes: int, pu: float
    ) -> tuple[bool, bool, bool]:
        return self.list_cache.fetch(term_id, needed, total_bytes, pu)

    def _admit_result_l1(self, entry: CachedResult, from_lower: bool) -> None:
        self.result_cache.admit_l1(entry, from_lower)

    def _maybe_refresh_static_result(self, key: tuple[int, ...],
                                     fresh: CachedResult) -> None:
        self.result_cache.maybe_refresh_static(key, fresh)

    # ------------------------------------------------------------------
    # CBSLRU static partition (Section VI.C.2)
    # ------------------------------------------------------------------

    def warmup_static(self, log: QueryLog, analyze_queries: int | None = None) -> dict:
        """Fill the static partitions by analysing a query log.

        The most frequent queries and the highest-EV terms are written to
        SSD once and pinned: no eviction, no replacement ever touches
        them.  Returns a summary dict (entries placed, blocks used).

        By default only the first half of the log is analysed (yesterday's
        log predicting today's traffic); queries seen once are never
        pinned — a singleton tells the analysis nothing about the future.
        """
        cfg = self.config
        if not self.policy.supports_static:
            raise ValueError("warmup_static only applies to the CBSLRU policy")
        if not cfg.uses_ssd:
            raise ValueError("warmup_static needs an SSD tier")

        n = analyze_queries if analyze_queries is not None else len(log) // 2
        qfreq: dict[tuple[int, ...], int] = {}
        tfreq: dict[int, int] = {}
        for query in log.head(n):
            qfreq[query.key] = qfreq.get(query.key, 0) + 1
            for t in query.key:
                tfreq[t] = tfreq.get(t, 0) + 1

        top_queries = sorted(
            ((k, f) for k, f in qfreq.items() if f >= 2), key=lambda kv: -kv[1]
        )
        summary = self.result_cache.place_static(top_queries)
        summary.update(self.list_cache.place_static(tfreq))
        return summary

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency (used by property tests).

        * L1 byte accounting matches the entries actually held;
        * capacities are respected;
        * SSD list blocks are disjoint across entries and within regions;
        * every valid RB slot maps back to a result entry and vice versa.
        """
        self.result_cache.check_invariants()
        self.list_cache.check_invariants()

    def occupancy(self) -> dict:
        """Current cache occupancy for inspection and tests."""
        result_occ = self.result_cache.occupancy()
        list_occ = self.list_cache.occupancy()
        return {
            "l1_result_bytes": result_occ["l1_result_bytes"],
            "l1_list_bytes": list_occ["l1_list_bytes"],
            "l1_results": result_occ["l1_results"],
            "l1_lists": list_occ["l1_lists"],
            "l2_results": result_occ["l2_results"],
            "l2_lists": list_occ["l2_lists"],
            "static_results": result_occ["static_results"],
            "static_lists": list_occ["static_lists"],
            "write_buffer": result_occ["write_buffer"],
        }

    # ------------------------------------------------------------------
    # Compatibility accessors into the layered caches
    # ------------------------------------------------------------------

    @property
    def l1_results(self):
        return self.result_cache.l1

    @property
    def l1_lists(self):
        return self.list_cache.l1

    @property
    def _l1_result_bytes(self) -> int:
        return self.result_cache.l1_bytes

    @property
    def _l1_list_bytes(self) -> int:
        return self.list_cache.l1_bytes

    @property
    def l2_result_map(self):
        return self.result_cache.l2_map

    @property
    def l2_result_lru(self):
        return self.result_cache.l2_lru

    @property
    def l2_lists(self):
        return self.list_cache.l2

    @property
    def rb_map(self):
        return self.result_cache.rb_map

    @property
    def rb_lru(self):
        return self.result_cache.rb_lru

    @property
    def static_results(self):
        return self.result_cache.static

    @property
    def static_lists(self):
        return self.list_cache.static

    @property
    def write_buffer(self):
        return self.result_cache.write_buffer

    @property
    def result_region(self):
        return self.result_cache.region

    @property
    def byte_result_region(self):
        return self.result_cache.byte_region

    @property
    def list_region(self):
        return self.list_cache.region

    @property
    def byte_list_region(self):
        return self.list_cache.byte_region
