"""The paper's contribution: the SSD-based two-level cache architecture.

* :mod:`repro.core.config` — capacities, policy knobs, the Table II/III
  constants (result entry 20 KB, K = 50, SB = 128 KB, W = 5, ...).
* :mod:`repro.core.selection` — data selection (Formula 1's SC, Formula
  2's efficiency value EV, the TEV threshold).
* :mod:`repro.core.placement` — data placement (write buffer, result
  block (RB) assembly, block-aligned log layout on SSD).
* :mod:`repro.core.replacement` — data replacement (LRU baseline, CBLRU's
  working/replace-first regions with IREN and size-matched victims,
  CBSLRU's static partition).
* :mod:`repro.core.manager` — the cache manager of Fig. 2 (selection /
  query / replacement management) orchestrating memory, SSD and HDD.
"""

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.entries import CachedList, CachedResult, EntryState, ResultBlock
from repro.core.lru import LruList
from repro.core.selection import SelectionPolicy, efficiency_value, ssd_cache_blocks
from repro.core.stats import CacheStats, Situation
from repro.core.placement import WriteBuffer
from repro.core.ssd_region import BlockRegion, ByteRegion
from repro.core.intersections import (
    IntersectionCache,
    IntersectionEntry,
    ThreeLevelCacheManager,
)
from repro.core.manager import CacheManager, QueryOutcome, build_hierarchy_for

__all__ = [
    "CacheConfig",
    "Policy",
    "Scheme",
    "CachedList",
    "CachedResult",
    "EntryState",
    "ResultBlock",
    "LruList",
    "SelectionPolicy",
    "efficiency_value",
    "ssd_cache_blocks",
    "CacheStats",
    "Situation",
    "WriteBuffer",
    "BlockRegion",
    "ByteRegion",
    "CacheManager",
    "QueryOutcome",
    "build_hierarchy_for",
    "IntersectionCache",
    "IntersectionEntry",
    "ThreeLevelCacheManager",
]
