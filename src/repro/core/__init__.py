"""The paper's contribution: the SSD-based two-level cache architecture.

* :mod:`repro.core.config` — capacities, policy knobs, the Table II/III
  constants (result entry 20 KB, K = 50, SB = 128 KB, W = 5, ...).
* :mod:`repro.core.selection` — data selection (Formula 1's SC, Formula
  2's efficiency value EV, the TEV threshold).
* :mod:`repro.core.placement` — data placement (write buffer, result
  block (RB) assembly, block-aligned log layout on SSD).
* :mod:`repro.core.policies` — pluggable admission/replacement policies
  (LRU baseline, CBLRU's working/replace-first regions with IREN and
  size-matched victims, CBSLRU's static partition) plus the registry
  for third-party policies.
* :mod:`repro.core.result_cache` / :mod:`repro.core.list_cache` — the
  layered L1<->L2 flows for results and inverted lists.
* :mod:`repro.core.events` — the cache life-cycle hook bus (on_admit,
  on_evict, on_flush, on_l2_victim) for stats and observability.
* :mod:`repro.core.manager` — the cache manager of Fig. 2 (selection /
  query / replacement management) orchestrating memory, SSD and HDD.
"""

from repro.core.config import CacheConfig, Policy, Scheme
from repro.core.entries import CachedList, CachedResult, EntryState, ResultBlock
from repro.core.events import (
    AdmitEvent,
    CacheEvents,
    EventCounter,
    EvictEvent,
    FlushEvent,
    L2VictimEvent,
)
from repro.core.lru import LruList
from repro.core.selection import SelectionPolicy, efficiency_value, ssd_cache_blocks
from repro.core.stats import CacheStats, Situation, StatsRecorder
from repro.core.placement import WriteBuffer
from repro.core.policies import (
    AdmissionPolicy,
    BaseReplacementPolicy,
    CblruPolicy,
    CbslruPolicy,
    LruPolicy,
    ReplacementPolicy,
    available_policies,
    create_policy,
    register_policy,
)
from repro.core.result_cache import ResultCache
from repro.core.list_cache import ListCache
from repro.core.ssd_region import BlockRegion, ByteRegion
from repro.core.intersections import (
    IntersectionCache,
    IntersectionEntry,
    ThreeLevelCacheManager,
)
from repro.core.manager import CacheManager, QueryOutcome, build_hierarchy_for

__all__ = [
    "CacheConfig",
    "Policy",
    "Scheme",
    "CachedList",
    "CachedResult",
    "EntryState",
    "ResultBlock",
    "LruList",
    "SelectionPolicy",
    "efficiency_value",
    "ssd_cache_blocks",
    "CacheStats",
    "Situation",
    "WriteBuffer",
    "BlockRegion",
    "ByteRegion",
    "CacheManager",
    "QueryOutcome",
    "build_hierarchy_for",
    "IntersectionCache",
    "IntersectionEntry",
    "ThreeLevelCacheManager",
    "AdmitEvent",
    "EvictEvent",
    "FlushEvent",
    "L2VictimEvent",
    "CacheEvents",
    "EventCounter",
    "StatsRecorder",
    "AdmissionPolicy",
    "ReplacementPolicy",
    "BaseReplacementPolicy",
    "LruPolicy",
    "CblruPolicy",
    "CbslruPolicy",
    "register_policy",
    "create_policy",
    "available_policies",
    "ResultCache",
    "ListCache",
]
