"""SSD cache-file space allocators.

The cache file on SSD is split into a result region and an inverted-list
region.  Two allocators implement the two placement disciplines the paper
compares:

* :class:`BlockRegion` — 128 KB-aligned whole blocks (the paper's
  log-based placement, Fig. 5/8).  Every device write is one large
  sequential block write, which is what keeps FTL garbage collection
  cheap.
* :class:`ByteRegion` — sector-aligned first-fit extents (the LRU
  baseline).  Entries land wherever they fit, so overwrites become the
  small scattered writes whose erase cost Fig. 19 charges to LRU.
"""

from __future__ import annotations

from repro.flash.constants import SECTOR_BYTES

__all__ = ["BlockRegion", "ByteRegion"]


class BlockRegion:
    """Whole-block allocator over ``num_blocks`` blocks at ``base_lba``."""

    def __init__(self, base_lba: int, num_blocks: int, block_bytes: int) -> None:
        if num_blocks < 0 or block_bytes <= 0 or block_bytes % SECTOR_BYTES:
            raise ValueError("bad region geometry")
        if base_lba < 0:
            raise ValueError("base_lba cannot be negative")
        self.base_lba = base_lba
        self.num_blocks = num_blocks
        self.block_bytes = block_bytes
        # Stack of free block ids; low ids first so the initial fill is a
        # sequential log append.
        self._free: list[int] = list(range(num_blocks - 1, -1, -1))

    @property
    def sectors_per_block(self) -> int:
        return self.block_bytes // SECTOR_BYTES

    @property
    def free_count(self) -> int:
        return len(self._free)

    def lba_of(self, block_id: int) -> int:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block id {block_id} out of region")
        return self.base_lba + block_id * self.sectors_per_block

    def alloc(self, n: int) -> list[int] | None:
        """Take ``n`` free blocks; None if not enough are free."""
        if n < 0:
            raise ValueError("cannot allocate a negative block count")
        if n > len(self._free):
            return None
        return [self._free.pop() for _ in range(n)]

    def free(self, blocks: list[int]) -> None:
        for b in blocks:
            if not 0 <= b < self.num_blocks:
                raise IndexError(f"block id {b} out of region")
        self._free.extend(reversed(blocks))


class ByteRegion:
    """First-fit extent allocator (sector granular) over ``size_bytes``."""

    def __init__(self, base_lba: int, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes cannot be negative")
        if base_lba < 0:
            raise ValueError("base_lba cannot be negative")
        self.base_lba = base_lba
        self.size_sectors = size_bytes // SECTOR_BYTES
        # Free extents as (start_sector, length_sectors), sorted by start.
        self._free: list[tuple[int, int]] = (
            [(0, self.size_sectors)] if self.size_sectors else []
        )

    @property
    def free_sectors(self) -> int:
        return sum(length for _, length in self._free)

    def alloc(self, nbytes: int) -> int | None:
        """First-fit allocate; returns an absolute LBA or None."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        need = -(-nbytes // SECTOR_BYTES)
        for i, (start, length) in enumerate(self._free):
            if length >= need:
                if length == need:
                    del self._free[i]
                else:
                    self._free[i] = (start + need, length - need)
                return self.base_lba + start
        return None

    def free(self, lba: int, nbytes: int) -> None:
        """Return an extent; adjacent free extents are coalesced."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        start = lba - self.base_lba
        length = -(-nbytes // SECTOR_BYTES)
        if start < 0 or start + length > self.size_sectors:
            raise ValueError("extent outside region")
        # Insert keeping sort order, then coalesce neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        # Overlap checks against neighbours.
        if lo > 0:
            pstart, plen = self._free[lo - 1]
            if pstart + plen > start:
                raise ValueError("double free (overlaps previous extent)")
        if lo < len(self._free) and start + length > self._free[lo][0]:
            raise ValueError("double free (overlaps next extent)")
        self._free.insert(lo, (start, length))
        self._coalesce_around(lo)

    def _coalesce_around(self, i: int) -> None:
        if i + 1 < len(self._free):
            s, l = self._free[i]
            ns, nl = self._free[i + 1]
            if s + l == ns:
                self._free[i] = (s, l + nl)
                del self._free[i + 1]
        if i > 0:
            ps, pl = self._free[i - 1]
            s, l = self._free[i]
            if ps + pl == s:
                self._free[i - 1] = (ps, pl + l)
                del self._free[i]
