"""Data placement: the write buffer and result-block assembly (Section VI.B).

Result entries evicted from memory are not written to SSD one by one.
They wait in a DRAM write buffer until a whole result block's worth has
accumulated, then the assembled 128 KB RB is flushed with a single large
sequential write (Fig. 10b).  Two rules reduce SSD traffic further:

* an entry whose SSD copy is still present in REPLACEABLE state is
  dropped from the buffer — the data is already on flash;
* an entry that is referenced again while waiting is pulled back out
  (it is hot after all).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.entries import CachedResult

__all__ = ["WriteBuffer"]


class WriteBuffer:
    """DRAM staging area that assembles result entries into RBs."""

    def __init__(self, entries_per_rb: int) -> None:
        if entries_per_rb < 1:
            raise ValueError("entries_per_rb must be >= 1")
        self.entries_per_rb = entries_per_rb
        self._pending: OrderedDict[tuple[int, ...], CachedResult] = OrderedDict()
        self.flushes = 0
        self.dropped_replaceable = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, query_key: tuple[int, ...]) -> bool:
        return query_key in self._pending

    def add(self, entry: CachedResult, already_on_ssd: bool) -> list[CachedResult] | None:
        """Stage an evicted entry; return a full RB batch when ready.

        ``already_on_ssd`` signals that a REPLACEABLE copy still exists in
        the SSD mapping, so no rewrite is needed (Section VI.C.1).
        """
        if already_on_ssd:
            self.dropped_replaceable += 1
            return None
        self._pending[entry.query_key] = entry
        if len(self._pending) >= self.entries_per_rb:
            batch = [self._pending.popitem(last=False)[1]
                     for _ in range(self.entries_per_rb)]
            self.flushes += 1
            return batch
        return None

    def take(self, query_key: tuple[int, ...]) -> CachedResult | None:
        """Pull an entry back out (it was referenced while staged)."""
        return self._pending.pop(query_key, None)

    def drain(self) -> list[CachedResult]:
        """Remove and return everything staged (shutdown / flush-now)."""
        out = list(self._pending.values())
        self._pending.clear()
        return out
