"""The layered result cache: L1 memory entries, the write buffer, SSD RBs.

Owns the full L1<->L2 flow for query results (Figs. 6a/7a/7b): the
memory result cache, the DRAM write buffer assembling evicted entries
into 128 KB result blocks, the SSD result region (whole RBs for the
cost-based policies, byte-granular extents for the LRU baseline), and
CBSLRU's pinned static results.  Victim choices are delegated to the
active :class:`~repro.core.policies.ReplacementPolicy`; life-cycle
changes are announced on the :class:`~repro.core.events.CacheEvents`
bus.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import Scheme
from repro.core.entries import CachedResult, EntryState, ResultBlock
from repro.core.events import AdmitEvent, CacheEvents, EvictEvent, FlushEvent, L2VictimEvent
from repro.core.lru import LruList
from repro.core.placement import WriteBuffer
from repro.core.ssd_region import BlockRegion, ByteRegion
from repro.flash.constants import SECTOR_BYTES
from repro.obs.audit import NULL_AUDIT
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:
    from repro.core.config import CacheConfig
    from repro.core.policies import ReplacementPolicy
    from repro.core.stats import CacheStats

__all__ = ["ResultCache"]


class ResultCache:
    """Two-level result cache (query management + replacement, result side)."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy,
        clock,
        mem,
        ssd,
        stats: CacheStats,
        events: CacheEvents,
        tracer=NULL_TRACER,
        audit=NULL_AUDIT,
    ) -> None:
        self.config = config
        self.policy = policy
        self.clock = clock
        self.mem = mem
        self.ssd = ssd
        self.stats = stats
        self.events = events
        self.tracer = tracer
        self.audit = audit

        # ---- L1 (memory) ----
        self.l1: LruList[tuple[int, ...], CachedResult] = LruList(config.replace_window)
        self.l1_bytes = 0

        # ---- L2 (SSD) ----
        self.rb_slot_sectors = -(-config.result_entry_bytes // SECTOR_BYTES)
        if config.uses_ssd and policy.cost_based:
            self.region: BlockRegion | None = BlockRegion(
                base_lba=0,
                num_blocks=config.ssd_result_blocks,
                block_bytes=config.block_bytes,
            )
            self.byte_region: ByteRegion | None = None
        elif config.uses_ssd:
            self.region = None
            self.byte_region = ByteRegion(0, config.ssd_result_bytes)
        else:
            self.region = self.byte_region = None

        # Fig. 7a result mapping + Fig. 7b RB mapping.
        self.l2_map: dict[tuple[int, ...], CachedResult] = {}
        self.rb_map: dict[int, ResultBlock] = {}
        self.rb_lru: LruList[int, ResultBlock] = LruList(config.replace_window)
        # LRU baseline keeps per-entry recency instead of per-RB.
        self.l2_lru: LruList[tuple[int, ...], CachedResult] = LruList(config.replace_window)
        # CBSLRU static partition (filled by warmup_static).
        self.static: dict[tuple[int, ...], CachedResult] = {}

        self.write_buffer = WriteBuffer(config.entries_per_rb)
        self._next_rb_id = 0

    def _expired(self, entry) -> bool:
        return entry.expired(self.clock.now_us, self.config.ttl_us)

    # ------------------------------------------------------------------
    # Lookup (query management, result side)
    # ------------------------------------------------------------------

    def lookup(self, key: tuple[int, ...]) -> int:
        """Serve a query from the result caches if possible.

        Returns 1 for an L1 hit, 2 for an L2 hit, 0 for a miss.  In the
        dynamic scenario (ttl_us > 0), stale copies are discarded on the
        way down and the query recomputes from fresh index data.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._lookup(key)
        with tracer.span("result.lookup") as span:
            level = self._lookup(key)
            span.set(hit_level=level)
        return level

    def _lookup(self, key: tuple[int, ...]) -> int:
        cfg = self.config
        entry = self.l1.get(key)
        if entry is not None:
            if self._expired(entry):
                self.l1.pop(key)
                self.l1_bytes -= entry.nbytes
                self.events.evict(EvictEvent(kind="result", key=key, level="l1",
                                             nbytes=entry.nbytes, reason="expired"))
                self.drop_l2(key, trim=True, reason="expired")
                self.stats.expired_results += 1
            else:
                self.l1.touch(key)
                entry.touch()
                self.mem.read(0, entry.nbytes)
                self.stats.result_l1_hits += 1
                return 1

        # Entries staged in the write buffer still live in DRAM.
        staged = self.write_buffer.take(key)
        if staged is not None:
            if self._expired(staged):
                self.stats.expired_results += 1
            else:
                staged.touch()
                self.mem.read(0, staged.nbytes)
                self.admit_l1(staged, from_lower=True)
                self.stats.result_l1_hits += 1
                return 1

        if not cfg.uses_ssd:
            return 0

        static = self.static.get(key)
        if static is not None and not self._expired(static):
            self.ssd.read(static.lba, static.nbytes)
            static.touch()
            copy = CachedResult(query_key=key, nbytes=static.nbytes,
                                freq=static.freq, created_us=static.created_us)
            self.admit_l1(copy, from_lower=True)
            self.stats.result_l2_hits += 1
            return 2

        entry = self.l2_map.get(key)
        if entry is not None and self._expired(entry):
            self.drop_l2(key, trim=True, reason="expired")
            self.stats.expired_results += 1
            entry = None
        if entry is not None:
            self.ssd.read(entry.lba, entry.nbytes)
            entry.touch()
            copy = CachedResult(query_key=key, nbytes=entry.nbytes,
                                freq=entry.freq, created_us=entry.created_us)
            if cfg.scheme is Scheme.EXCLUSIVE:
                self.drop_l2(key, trim=True, reason="exclusive-promote")
            else:
                # Hybrid/inclusive: the SSD copy turns REPLACEABLE but keeps
                # its mapping so a later eviction can skip the rewrite.
                entry.state = EntryState.REPLACEABLE
                if entry.rb_id is not None:
                    rb = self.rb_map[entry.rb_id]
                    if entry.slot is not None and rb.is_valid(entry.slot):
                        rb.clear_valid(entry.slot)
                    if entry.rb_id in self.rb_lru:
                        self.rb_lru.touch(entry.rb_id)
                elif key in self.l2_lru:
                    self.l2_lru.touch(key)
            self.admit_l1(copy, from_lower=True)
            self.stats.result_l2_hits += 1
            return 2
        return 0

    def maybe_refresh_static(self, key: tuple[int, ...], fresh: CachedResult) -> None:
        """Rewrite a stale pinned result with the just-computed data."""
        static = self.static.get(key)
        if static is None or not self._expired(static):
            return
        self.ssd.write(static.lba, static.nbytes)
        static.created_us = fresh.created_us
        self.stats.static_refreshes += 1

    # ------------------------------------------------------------------
    # L1 admission and eviction
    # ------------------------------------------------------------------

    def admit_l1(self, entry: CachedResult, from_lower: bool) -> None:
        """Insert a result entry into the memory result cache."""
        cfg = self.config
        if entry.nbytes > cfg.mem_result_bytes:
            return  # cache too small for even one entry
        while self.l1_bytes + entry.nbytes > cfg.mem_result_bytes:
            _, victim = self.l1.pop_lru()
            self.l1_bytes -= victim.nbytes
            self.events.evict(EvictEvent(kind="result", key=victim.query_key,
                                         level="l1", nbytes=victim.nbytes,
                                         reason="capacity"))
            self._on_evicted(victim)
        self.l1.insert(entry.query_key, entry)
        self.l1_bytes += entry.nbytes
        self.events.admit(AdmitEvent(kind="result", key=entry.query_key,
                                     level="l1", nbytes=entry.nbytes))
        if cfg.scheme is Scheme.INCLUSIVE and cfg.uses_ssd and not from_lower:
            # Write-through: an inclusive L2 always holds what L1 holds.
            self.push_to_l2(entry)

    def _on_evicted(self, victim: CachedResult) -> None:
        cfg = self.config
        if not cfg.uses_ssd or victim.query_key in self.static:
            return
        if cfg.scheme is Scheme.INCLUSIVE:
            return  # already written through
        if not self.policy.cost_based:
            self._lru_to_ssd(victim)
            return
        if self._copy_usable(victim.query_key):
            # Re-validate the REPLACEABLE SSD copy instead of rewriting.
            entry = self.l2_map[victim.query_key]
            entry.state = EntryState.NORMAL
            entry.freq = max(entry.freq, victim.freq)
            if entry.rb_id is not None:
                rb = self.rb_map[entry.rb_id]
                rb.set_valid(entry.slot, victim.query_key)
            self.events.admit(AdmitEvent(kind="result", key=victim.query_key,
                                         level="l2", nbytes=entry.nbytes,
                                         reason="revalidate"))
            self.write_buffer.dropped_replaceable += 1
            return
        batch = self.write_buffer.add(victim, already_on_ssd=False)
        if batch is not None:
            self._flush_block(batch)

    def _copy_usable(self, key: tuple[int, ...]) -> bool:
        entry = self.l2_map.get(key)
        return entry is not None and entry.state is EntryState.REPLACEABLE

    # ------------------------------------------------------------------
    # L2 result cache (SSD side)
    # ------------------------------------------------------------------

    def push_to_l2(self, entry: CachedResult) -> None:
        """Inclusive-scheme write-through of one result entry."""
        if not self.policy.cost_based:
            self._lru_to_ssd(entry)
        else:
            batch = self.write_buffer.add(
                CachedResult(query_key=entry.query_key, nbytes=entry.nbytes,
                             freq=entry.freq, created_us=entry.created_us),
                already_on_ssd=self._copy_usable(entry.query_key),
            )
            if batch is not None:
                self._flush_block(batch)

    def _flush_block(self, batch: list[CachedResult]) -> None:
        """Assemble a full RB and write it with one sequential block write."""
        cfg = self.config
        rb = self._take_block()
        if rb is None:
            return  # result region has zero capacity
        for slot, entry in enumerate(batch):
            # Drop any stale mapping of the same key elsewhere.
            old = self.l2_map.pop(entry.query_key, None)
            if old is not None and old.rb_id is not None and old.rb_id != rb.rb_id:
                old_rb = self.rb_map.get(old.rb_id)
                if old_rb is not None and old.slot is not None and old_rb.is_valid(old.slot):
                    old_rb.clear_valid(old.slot)
            entry.rb_id = rb.rb_id
            entry.slot = slot
            entry.lba = rb.lba + slot * self.rb_slot_sectors
            entry.state = EntryState.NORMAL
            rb.set_valid(slot, entry.query_key)
            self.l2_map[entry.query_key] = entry
        self.ssd.write(rb.lba, cfg.block_bytes)
        self.events.flush(FlushEvent(kind="result", lba=rb.lba,
                                     nbytes=cfg.block_bytes, entries=len(batch)))
        self.rb_lru.insert(rb.rb_id, rb)

    def _take_block(self) -> ResultBlock | None:
        """A free RB, or the policy's victim (Fig. 11: max IREN in the RFR)."""
        cfg = self.config
        region = self.region
        if region is None or region.num_blocks == 0:
            return None
        blocks = region.alloc(1)
        if blocks is not None:
            rb = ResultBlock(
                rb_id=self._next_rb_id,
                lba=region.lba_of(blocks[0]),
                num_slots=cfg.entries_per_rb,
            )
            rb._region_block = blocks[0]  # type: ignore[attr-defined]
            self.rb_map[rb.rb_id] = rb
            self._next_rb_id += 1
            return rb
        victim_id = self.policy.pick_rb_victim(self.rb_lru)
        rb = self.rb_lru.pop(victim_id)
        self.events.l2_victim(L2VictimEvent(kind="result", key=victim_id,
                                            stage="rb-iren"))
        for slot in range(rb.num_slots):
            key = rb.entries[slot]
            if key is not None:
                stale = self.l2_map.get(key)
                if stale is not None and stale.rb_id == rb.rb_id:
                    del self.l2_map[key]
            rb.entries[slot] = None
        rb.flags = 0
        return rb

    def _lru_to_ssd(self, victim: CachedResult) -> None:
        """Baseline path: write the entry alone at whatever offset fits."""
        region = self.byte_region
        if region is None or region.size_sectors == 0:
            return
        old = self.l2_map.pop(victim.query_key, None)
        if old is not None and old.lba is not None:
            region.free(old.lba, old.nbytes)
            if victim.query_key in self.l2_lru:
                self.l2_lru.pop(victim.query_key)
        lba = region.alloc(victim.nbytes)
        while lba is None and len(self.l2_lru) > 0:
            key, evicted = self.l2_lru.pop_lru()
            self.l2_map.pop(key, None)
            region.free(evicted.lba, evicted.nbytes)
            self.events.l2_victim(L2VictimEvent(kind="result", key=key, stage="lru"))
            lba = region.alloc(victim.nbytes)
        if lba is None:
            return
        victim.lba = lba
        victim.rb_id = None
        victim.slot = None
        victim.state = EntryState.NORMAL
        self.ssd.write(lba, victim.nbytes)
        self.events.flush(FlushEvent(kind="result", lba=lba, nbytes=victim.nbytes))
        self.l2_map[victim.query_key] = victim
        self.l2_lru.insert(victim.query_key, victim)

    def drop_l2(self, key: tuple[int, ...], trim: bool,
                reason: str = "invalidate") -> None:
        entry = self.l2_map.pop(key, None)
        if entry is None:
            return
        if entry.rb_id is not None:
            rb = self.rb_map.get(entry.rb_id)
            if rb is not None and entry.slot is not None and rb.is_valid(entry.slot):
                rb.clear_valid(entry.slot)
                rb.entries[entry.slot] = None
        elif entry.lba is not None and self.byte_region is not None:
            self.byte_region.free(entry.lba, entry.nbytes)
            if key in self.l2_lru:
                self.l2_lru.pop(key)
        if trim and entry.lba is not None:
            self.ssd.trim(entry.lba, entry.nbytes)
        self.events.evict(EvictEvent(kind="result", key=key, level="l2",
                                     nbytes=entry.nbytes, reason=reason))

    # ------------------------------------------------------------------
    # CBSLRU static partition (Section VI.C.2)
    # ------------------------------------------------------------------

    def place_static(self, top_queries: list[tuple[tuple[int, ...], int]]) -> dict:
        """Pin the hottest analysed queries into whole static RBs."""
        cfg = self.config
        placed = 0
        budget = int(cfg.ssd_result_blocks * cfg.static_fraction)
        qi = 0
        for _ in range(budget):
            blocks = self.region.alloc(1)
            if blocks is None:
                break
            lba = self.region.lba_of(blocks[0])
            wrote_any = False
            for slot in range(cfg.entries_per_rb):
                if qi >= len(top_queries):
                    break
                key, freq = top_queries[qi]
                qi += 1
                self.static[key] = CachedResult(
                    query_key=key,
                    nbytes=cfg.result_entry_bytes,
                    freq=freq,
                    lba=lba + slot * self.rb_slot_sectors,
                    state=EntryState.NORMAL,
                    static=True,
                    created_us=self.clock.now_us,
                )
                self.events.admit(AdmitEvent(kind="result", key=key, level="static",
                                             nbytes=cfg.result_entry_bytes))
                placed += 1
                wrote_any = True
            if wrote_any:
                self.ssd.write(lba, cfg.block_bytes)
            if qi >= len(top_queries):
                break
        return {"static_results": placed, "static_result_blocks_budget": budget}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """L1 accounting, capacity, and RB bitmap <-> mapping agreement."""
        cfg = self.config
        l1_bytes = sum(e.nbytes for _, e in self.l1.items_lru_order())
        if l1_bytes != self.l1_bytes:
            raise AssertionError("L1 result byte accounting out of sync")
        if l1_bytes > cfg.mem_result_bytes:
            raise AssertionError("L1 result cache over capacity")

        if not cfg.uses_ssd:
            return

        for rb_id, rb in self.rb_map.items():
            for slot in range(rb.num_slots):
                key = rb.entries[slot]
                if rb.is_valid(slot):
                    entry = self.l2_map.get(key)
                    if entry is None or entry.rb_id != rb_id or entry.slot != slot:
                        raise AssertionError(
                            f"valid RB slot ({rb_id}, {slot}) has no matching "
                            "result mapping"
                        )
        for key, entry in self.l2_map.items():
            if entry.rb_id is not None and entry.state is EntryState.NORMAL:
                rb = self.rb_map.get(entry.rb_id)
                if rb is None or not rb.is_valid(entry.slot):
                    raise AssertionError(
                        f"NORMAL result mapping {key} points at an invalid RB slot"
                    )

    def occupancy(self) -> dict:
        return {
            "l1_result_bytes": self.l1_bytes,
            "l1_results": len(self.l1),
            "l2_results": len(self.l2_map),
            "static_results": len(self.static),
            "write_buffer": len(self.write_buffer),
        }
