"""Three-level caching: results, inverted lists, and intersections.

The paper's conclusion points at Long & Suel's three-level scheme [19] as
future work: besides results and single-term lists, cache the
*intersections* of frequently co-occurring term pairs.  An intersection
is far smaller than either list (independence estimate
|A∩B| ~ df_A * df_B / N), so serving a pair from its cached intersection
replaces two large prefix reads with one small memory read.

:class:`ThreeLevelCacheManager` extends the paper's two-level manager
with a memory-resident intersection cache: pairs seen at least
``min_pair_freq`` times are admitted after being computed once, and later
queries containing a cached pair skip fetching both member lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CacheConfig
from repro.core.entries import CachedResult
from repro.core.lru import LruList
from repro.core.manager import CacheManager
from repro.core.stats import Situation
from repro.engine.postings import POSTING_BYTES
from repro.engine.query import Query

__all__ = ["IntersectionEntry", "IntersectionCache", "ThreeLevelCacheManager"]


@dataclass
class IntersectionEntry:
    """A cached pairwise posting-list intersection."""

    pair: tuple[int, int]
    nbytes: int
    #: postings in the intersection (what scoring must traverse)
    postings: int
    freq: int = 1
    created_us: float = 0.0

    def touch(self) -> None:
        self.freq += 1

    def expired(self, now_us: float, ttl_us: float) -> bool:
        return ttl_us > 0 and now_us - self.created_us > ttl_us


class IntersectionCache:
    """LRU cache of pairwise intersections with byte-budget eviction."""

    def __init__(self, capacity_bytes: int, replace_window: int = 5) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes cannot be negative")
        self.capacity_bytes = capacity_bytes
        self._lru: LruList[tuple[int, int], IntersectionEntry] = LruList(replace_window)
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def lookup(
        self, pair: tuple[int, int], now_us: float = 0.0, ttl_us: float = 0.0
    ) -> IntersectionEntry | None:
        """Look up a pair; stale entries (dynamic scenario) count as misses
        and are dropped."""
        entry = self._lru.get(pair)
        if entry is not None and entry.expired(now_us, ttl_us):
            self.drop(pair)
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self._lru.touch(pair)
        entry.touch()
        self.hits += 1
        return entry

    def insert(self, entry: IntersectionEntry) -> bool:
        """Admit an intersection; returns False if it cannot ever fit."""
        if entry.nbytes > self.capacity_bytes:
            return False
        existing = self._lru.get(entry.pair)
        if existing is not None:
            self._lru.pop(entry.pair)
            self._bytes -= existing.nbytes
        while self._bytes + entry.nbytes > self.capacity_bytes and len(self._lru):
            _, victim = self._lru.pop_lru()
            self._bytes -= victim.nbytes
        self._lru.insert(entry.pair, entry)
        self._bytes += entry.nbytes
        return True

    def drop(self, pair: tuple[int, int]) -> None:
        entry = self._lru.get(pair)
        if entry is not None:
            self._lru.pop(pair)
            self._bytes -= entry.nbytes


def estimate_intersection_postings(df_a: int, df_b: int, num_docs: int) -> int:
    """Independence estimate of |A ∩ B| (at least 1 to keep entries real)."""
    if num_docs <= 0:
        raise ValueError("num_docs must be positive")
    return max(1, int(df_a * df_b / num_docs))


class ThreeLevelCacheManager(CacheManager):
    """Two-level cache + an intermediate intersection level [19]."""

    def __init__(
        self,
        config: CacheConfig,
        hierarchy,
        index,
        processor=None,
        intersection_bytes: int = 8 * 1024 * 1024,
        min_pair_freq: int = 2,
        materialize_results: bool = False,
        telemetry=None,
    ) -> None:
        super().__init__(config, hierarchy, index, processor,
                         materialize_results=materialize_results,
                         telemetry=telemetry)
        if min_pair_freq < 1:
            raise ValueError("min_pair_freq must be >= 1")
        self.intersections = IntersectionCache(
            intersection_bytes, replace_window=config.replace_window
        )
        self.min_pair_freq = min_pair_freq
        self._pair_freq: dict[tuple[int, int], int] = {}

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _pairs(key: tuple[int, ...]) -> list[tuple[int, int]]:
        return [(key[i], key[j])
                for i in range(len(key)) for j in range(i + 1, len(key))]

    def _intersection_for(self, pair: tuple[int, int]) -> IntersectionEntry:
        """Size the intersection of the two *traversed prefixes*.

        The processor only ever scores the frequency-sorted prefixes (the
        utilization rates), so the cached intersection is the meet of
        those prefixes — typically far smaller than either one.
        """
        stats = self.index.stats
        used_a = int(stats.doc_freqs[pair[0]] * stats.utilization[pair[0]])
        used_b = int(stats.doc_freqs[pair[1]] * stats.utilization[pair[1]])
        postings = estimate_intersection_postings(
            max(1, used_a), max(1, used_b), self.index.num_docs
        )
        return IntersectionEntry(
            pair=pair,
            # Two tf values per posting: slightly wider records.
            nbytes=postings * (POSTING_BYTES + 4),
            postings=postings,
            created_us=self.clock.now_us,
        )

    # -- the three-level compute path -------------------------------------

    def _compute_query(self, query: Query) -> Situation:
        """Like the two-level path, but cached pair intersections serve
        both of their member terms from memory."""
        self.stats.result_misses += 1
        plan = self.processor.plan(query)

        served: set[int] = set()
        inter_postings = 0
        for pair in self._pairs(query.key):
            if pair[0] in served or pair[1] in served:
                continue
            entry = self.intersections.lookup(
                pair, now_us=self.clock.now_us, ttl_us=self.config.ttl_us
            )
            if entry is None:
                continue
            self.mem.read(0, entry.nbytes)
            served.update(pair)
            inter_postings += entry.postings

        used_mem = bool(served)
        used_ssd = used_hdd = False
        remaining_postings = 0
        for demand in plan.demands:
            if demand.term_id in served:
                continue
            src_mem, src_ssd, src_hdd = self._fetch_list(
                demand.term_id, demand.needed_bytes, demand.list_bytes, demand.pu
            )
            used_mem |= src_mem
            used_ssd |= src_ssd
            used_hdd |= src_hdd
            remaining_postings += demand.postings

        # Scoring traverses only intersections + unserved prefixes.
        costs = self.processor.costs
        cpu = (costs.fixed_us
               + costs.per_posting_us * (remaining_postings + inter_postings)
               + costs.per_result_us * self.processor.top_k)
        self.clock.consume(self.hierarchy.cpu_channel, cpu, charge=False)
        self.processor.execute(plan, materialize=self.materialize_results)
        entry = CachedResult(
            query_key=query.key,
            nbytes=self.config.result_entry_bytes,
            created_us=self.clock.now_us,
        )
        self._admit_result_l1(entry, from_lower=False)
        self._maybe_refresh_static_result(query.key, entry)

        self._admit_intersections(query, plan, served)

        if not (used_mem or used_ssd or used_hdd):
            used_mem = True
        return Situation.for_lists(used_mem, used_ssd, used_hdd)

    def _admit_intersections(self, query: Query, plan, served: set[int]) -> None:
        """After computing with full lists in hand, build and admit the
        intersections of recurring pairs (charging the merge CPU)."""
        by_term = {d.term_id: d for d in plan.demands}
        for pair in self._pairs(query.key):
            if pair[0] in served or pair[1] in served:
                continue  # no fresh lists were traversed for these
            freq = self._pair_freq.get(pair, 0) + 1
            self._pair_freq[pair] = freq
            if freq < self.min_pair_freq:
                continue
            if self.intersections._lru.get(pair) is not None:
                continue
            entry = self._intersection_for(pair)
            # Merging costs one pass over both traversed prefixes.
            merge_postings = by_term[pair[0]].postings + by_term[pair[1]].postings
            self.clock.consume(self.hierarchy.cpu_channel,
                               self.processor.costs.per_posting_us * merge_postings,
                               charge=False)
            self.intersections.insert(entry)

    def occupancy(self) -> dict:
        occ = super().occupancy()
        occ["intersections"] = len(self.intersections)
        occ["intersection_bytes"] = self.intersections.used_bytes
        return occ
