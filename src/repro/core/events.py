"""Cache life-cycle event hooks — the observability seam of the core.

The layered caches (:mod:`repro.core.result_cache`,
:mod:`repro.core.list_cache`) and the replacement policies announce what
they do through a :class:`CacheEvents` bus instead of having consumers
reach into their internals.  Four hooks cover the life cycle:

* ``on_admit`` — an entry entered a tier (L1, L2, or the static
  partition), or an SSD copy was re-validated in place (``reason ==
  "revalidate"``, the Section VI.C write-avoidance path);
* ``on_evict`` — an entry left a tier (capacity pressure, TTL expiry,
  TEV discard, invalidation);
* ``on_flush`` — a physical SSD cache-file write (an assembled result
  block, a cost-based list placement, or a baseline byte-granular write);
* ``on_l2_victim`` — a replacement victim was selected on the SSD side,
  tagged with the Fig. 11/13 search stage that produced it.

:class:`repro.core.stats.StatsRecorder` subscribes the query-replay
counters; :class:`EventCounter` is a ready-made subscriber for cluster
shards and ad-hoc observability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "AdmitEvent",
    "EvictEvent",
    "FlushEvent",
    "L2VictimEvent",
    "CacheEvents",
    "EventCounter",
]


@dataclass(slots=True)
class AdmitEvent:
    """An entry entered a cache tier (or was re-validated on SSD).

    Event objects are created on the serving hot path, so they are plain
    slots dataclasses; subscribers must treat them as immutable.
    """

    #: "result" or "list"
    kind: str
    #: query key tuple (results) or term id (lists)
    key: Any
    #: "l1", "l2", or "static"
    level: str
    nbytes: int = 0
    #: "revalidate" marks a Section VI.C avoided rewrite; None otherwise
    reason: str | None = None


@dataclass(slots=True)
class EvictEvent:
    """An entry left a cache tier."""

    kind: str
    key: Any
    #: tier the entry left ("l1" or "l2")
    level: str
    nbytes: int = 0
    #: "capacity", "tev", "expired", "invalidate", ...
    reason: str | None = None


@dataclass(slots=True)
class FlushEvent:
    """One physical write into the SSD cache file."""

    kind: str
    lba: int
    nbytes: int
    #: result entries in an RB, blocks in a list placement, 1 otherwise
    entries: int = 1


@dataclass(slots=True)
class L2VictimEvent:
    """A replacement victim was chosen on the SSD side."""

    kind: str
    #: rb_id for result blocks, term_id for lists
    key: Any
    #: "rb-iren", "replaceable", "size-match", "assemble", "fallback", "lru"
    stage: str


def _dispatch(hooks: list, event) -> None:
    """Deliver ``event`` to every hook even if one raises.

    Dispatch semantics: a failing subscriber must not prevent later
    subscribers from receiving the event — every hook runs to completion,
    then the *first* exception is re-raised so a broken observer still
    fails loudly (in tests and benchmarks) instead of silently skewing
    what it measures.
    """
    if not hooks:
        # Unobserved bus (telemetry disabled): truly free — no tuple
        # build, no loop setup.
        return
    if len(hooks) == 1:
        # Single subscriber (the common case): isolation is moot and the
        # first exception is simply the exception.
        hooks[0](event)
        return
    first_exc: Exception | None = None
    # Iterating the live list is safe: subscribing from inside a hook is
    # not a supported pattern, and try/except is free on the no-raise
    # path — so no defensive tuple copy per event.
    for cb in hooks:
        try:
            cb(event)
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            if first_exc is None:
                first_exc = exc
    if first_exc is not None:
        raise first_exc


class CacheEvents:
    """Synchronous fan-out of the four cache hooks.

    Subscribers must not mutate cache state; they observe.  A raising
    subscriber never starves the ones registered after it (see
    :func:`_dispatch`): all hooks are notified first, then the first
    exception propagates.
    """

    def __init__(self) -> None:
        self._on_admit: list[Callable[[AdmitEvent], None]] = []
        self._on_evict: list[Callable[[EvictEvent], None]] = []
        self._on_flush: list[Callable[[FlushEvent], None]] = []
        self._on_l2_victim: list[Callable[[L2VictimEvent], None]] = []

    def subscribe(
        self,
        *,
        on_admit: Callable[[AdmitEvent], None] | None = None,
        on_evict: Callable[[EvictEvent], None] | None = None,
        on_flush: Callable[[FlushEvent], None] | None = None,
        on_l2_victim: Callable[[L2VictimEvent], None] | None = None,
    ) -> Callable[[], None]:
        """Attach any subset of hooks; returns an unsubscribe callable."""
        attached: list[tuple[list, Callable]] = []
        for hooks, cb in (
            (self._on_admit, on_admit),
            (self._on_evict, on_evict),
            (self._on_flush, on_flush),
            (self._on_l2_victim, on_l2_victim),
        ):
            if cb is not None:
                hooks.append(cb)
                attached.append((hooks, cb))

        def unsubscribe() -> None:
            for hooks, cb in attached:
                if cb in hooks:
                    hooks.remove(cb)

        return unsubscribe

    # -- emission (called by the cache layers) ---------------------------

    def admit(self, event: AdmitEvent) -> None:
        _dispatch(self._on_admit, event)

    def evict(self, event: EvictEvent) -> None:
        _dispatch(self._on_evict, event)

    def flush(self, event: FlushEvent) -> None:
        _dispatch(self._on_flush, event)

    def l2_victim(self, event: L2VictimEvent) -> None:
        _dispatch(self._on_l2_victim, event)


class EventCounter:
    """Counts events by ``(hook, kind)`` — e.g. ``("flush", "result")``.

    A drop-in observer for cluster shards and benchmarks that want cache
    activity without touching cache internals.  Pass ``events=None`` for
    a detached counter that only aggregates others via :meth:`merge`
    (how a broker sums its shards).
    """

    def __init__(self, events: CacheEvents | None = None) -> None:
        self.counts: dict[tuple[str, str], int] = {}
        self._unsubscribe: Callable[[], None] | None = None
        if events is not None:
            self._unsubscribe = events.subscribe(
                on_admit=lambda e: self._bump("admit", e.kind),
                on_evict=lambda e: self._bump("evict", e.kind),
                on_flush=lambda e: self._bump("flush", e.kind),
                on_l2_victim=lambda e: self._bump("l2_victim", e.kind),
            )

    def _bump(self, hook: str, kind: str) -> None:
        key = (hook, kind)
        self.counts[key] = self.counts.get(key, 0) + 1

    def get(self, hook: str, kind: str) -> int:
        return self.counts.get((hook, kind), 0)

    def merge(self, other: "EventCounter") -> "EventCounter":
        """Sum another counter into this one, key-wise.

        Every ``(hook, kind)`` key the other counter saw is preserved —
        including combinations this counter never observed itself — so
        broker-level aggregation equals the sum of shard-level counts.
        Returns self for chaining.
        """
        for key, n in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + n
        return self

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
