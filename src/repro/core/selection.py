"""Data selection policy (Section VI.A).

Implements the paper's two formulas:

* **Formula 1** — the SSD-cached prefix of an inverted list is
  ``SC = ceil(SI * PU / SB)`` whole flash blocks, where SI is the used
  list size in memory, PU its utilization rate and SB the block size.
* **Formula 2** — the efficiency value ``EV = Freq / SC`` ranks lists by
  hits delivered per block of cache space; entries below the threshold
  TEV are discarded instead of flushed to SSD (Fig. 4's memory / SSD /
  HDD bands).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ssd_cache_blocks", "efficiency_value", "SelectionPolicy", "SelectionDecision"]


def ssd_cache_blocks(si_bytes: int, pu: float, sb_bytes: int) -> int:
    """Formula 1: blocks of a used list worth caching on SSD.

    >>> ssd_cache_blocks(1000 * 1024, 0.5, 128 * 1024)   # the paper's example
    4
    """
    if si_bytes < 0:
        raise ValueError("si_bytes cannot be negative")
    if not 0.0 < pu <= 1.0:
        raise ValueError(f"pu must be in (0, 1]: {pu}")
    if sb_bytes <= 0:
        raise ValueError("sb_bytes must be positive")
    if si_bytes == 0:
        return 0
    return max(1, -(-int(si_bytes * pu) // sb_bytes))


def efficiency_value(freq: int, sc_blocks: int) -> float:
    """Formula 2: EV = Freq / SC (accesses delivered per cached block)."""
    if freq < 0:
        raise ValueError("freq cannot be negative")
    if sc_blocks <= 0:
        raise ValueError("sc_blocks must be positive")
    return freq / sc_blocks


@dataclass(frozen=True)
class SelectionDecision:
    """Outcome of selecting a memory-evicted list for the SSD tier."""

    #: admit to SSD at all (False = discard, Fig. 4's HDD band)
    admit: bool
    #: blocks to cache when admitted (Formula 1)
    sc_blocks: int
    #: the entry's efficiency value (Formula 2)
    ev: float


class SelectionPolicy:
    """Selection management (SM) of the cache manager.

    The LRU baseline admits everything at its full used size; the
    cost-based policies quantise with Formula 1 and filter with TEV.
    """

    def __init__(self, block_bytes: int, tev: float = 0.0, cost_based: bool = True) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if tev < 0:
            raise ValueError("tev cannot be negative")
        self.block_bytes = block_bytes
        self.tev = tev
        self.cost_based = cost_based

    def select_list(self, si_bytes: int, pu: float, freq: int) -> SelectionDecision:
        """Decide SSD admission for a list evicted from memory."""
        if si_bytes <= 0:
            return SelectionDecision(admit=False, sc_blocks=0, ev=0.0)
        if not self.cost_based:
            # Baseline: cache the whole used list, rounded up to blocks
            # only for space accounting (placement is byte-granular).
            blocks = -(-si_bytes // self.block_bytes)
            return SelectionDecision(admit=True, sc_blocks=blocks,
                                     ev=efficiency_value(freq, blocks))
        sc = ssd_cache_blocks(si_bytes, pu, self.block_bytes)
        if sc == 0:
            return SelectionDecision(admit=False, sc_blocks=0, ev=0.0)
        ev = efficiency_value(freq, sc)
        return SelectionDecision(admit=ev >= self.tev, sc_blocks=sc, ev=ev)
