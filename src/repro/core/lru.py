"""An LRU list with a working region and a replace-first region.

CBLRU (Figs. 11-13) splits the recency list: the *working region* holds
the most recently used entries; the trailing *replace-first region* of
window size W is where victims are searched first.

The list is an intrusive doubly-linked **slot arena**: preallocated
parallel arrays hold each entry's prev/next slot index, key and value,
with slot 0 as the sentinel (``_next[0]`` = LRU head, ``_prev[0]`` = MRU
tail) and a free-slot stack for reuse.  A touch is four list-index
writes instead of an ``OrderedDict.move_to_end`` dispatch, and no node
objects are allocated or collected on the hot path.  The property suite
in ``tests/test_core_lru_model.py`` pins every operation to an
``OrderedDict`` reference model.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

from repro._hot import HOT

__all__ = ["LruList"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel slot index: its next is the LRU head, its prev the MRU tail.
_SENTINEL = 0


class LruList(Generic[K, V]):
    """Ordered key->value map; last = most recently used."""

    def __init__(self, replace_window: int = 5) -> None:
        if replace_window < 1:
            raise ValueError("replace_window must be >= 1")
        self.replace_window = replace_window
        # Parallel slot arrays; index 0 is the sentinel of the circular list.
        self._prev: list[int] = [_SENTINEL]
        self._next: list[int] = [_SENTINEL]
        self._keys: list[K | None] = [None]
        self._vals: list[V | None] = [None]
        self._slot: dict[K, int] = {}
        self._free: list[int] = []

    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, key: K) -> bool:
        return key in self._slot

    def get(self, key: K) -> V | None:
        """Look up without touching recency."""
        slot = self._slot.get(key)
        return None if slot is None else self._vals[slot]

    def touch(self, key: K) -> V:
        """Mark ``key`` most recently used and return its value."""
        slot = self._slot[key]
        prev, nxt = self._prev, self._next
        p, n = prev[slot], nxt[slot]
        nxt[p] = n
        prev[n] = p
        tail = prev[_SENTINEL]
        nxt[tail] = slot
        prev[slot] = tail
        nxt[slot] = _SENTINEL
        prev[_SENTINEL] = slot
        HOT.lru_node_moves += 1
        return self._vals[slot]

    def insert(self, key: K, value: V) -> None:
        """Insert (or replace) as most recently used."""
        prev, nxt = self._prev, self._next
        slot = self._slot.get(key)
        if slot is None:
            if self._free:
                slot = self._free.pop()
                self._keys[slot] = key
                self._vals[slot] = value
            else:
                slot = len(self._keys)
                self._keys.append(key)
                self._vals.append(value)
                prev.append(_SENTINEL)
                nxt.append(_SENTINEL)
            self._slot[key] = slot
        else:
            self._vals[slot] = value
            p, n = prev[slot], nxt[slot]
            nxt[p] = n
            prev[n] = p
        tail = prev[_SENTINEL]
        nxt[tail] = slot
        prev[slot] = tail
        nxt[slot] = _SENTINEL
        prev[_SENTINEL] = slot
        HOT.lru_node_moves += 1

    def pop(self, key: K) -> V:
        slot = self._slot.pop(key)
        prev, nxt = self._prev, self._next
        p, n = prev[slot], nxt[slot]
        nxt[p] = n
        prev[n] = p
        value = self._vals[slot]
        self._keys[slot] = None
        self._vals[slot] = None
        self._free.append(slot)
        HOT.lru_node_moves += 1
        return value

    def pop_lru(self) -> tuple[K, V]:
        """Remove and return the least recently used item."""
        slot = self._next[_SENTINEL]
        if slot == _SENTINEL:
            raise KeyError("pop_lru on empty LruList")
        key = self._keys[slot]
        value = self._vals[slot]
        del self._slot[key]
        n = self._next[slot]
        self._next[_SENTINEL] = n
        self._prev[n] = _SENTINEL
        self._keys[slot] = None
        self._vals[slot] = None
        self._free.append(slot)
        HOT.lru_node_moves += 1
        return key, value

    def peek_lru(self) -> tuple[K, V]:
        slot = self._next[_SENTINEL]
        if slot == _SENTINEL:
            raise KeyError("peek_lru on empty LruList")
        return self._keys[slot], self._vals[slot]

    def replace_first_region(self) -> list[tuple[K, V]]:
        """The W least-recently-used items, LRU first (Fig. 11's RFR)."""
        out: list[tuple[K, V]] = []
        slot = self._next[_SENTINEL]
        while slot != _SENTINEL and len(out) < self.replace_window:
            out.append((self._keys[slot], self._vals[slot]))
            slot = self._next[slot]
        return out

    def items_lru_order(self) -> Iterator[tuple[K, V]]:
        """All items, least recently used first (the Fig. 13 fallback scan)."""
        for key in self.keys():
            # Looked up live, not from the snapshot: a key removed while
            # the caller iterates raises KeyError, as the dict-backed
            # implementation always did.
            yield key, self._vals[self._slot[key]]

    def keys(self) -> list[K]:
        out: list[K] = []
        slot = self._next[_SENTINEL]
        while slot != _SENTINEL:
            out.append(self._keys[slot])
            slot = self._next[slot]
        return out

    def clear(self) -> None:
        self._prev = [_SENTINEL]
        self._next = [_SENTINEL]
        self._keys = [None]
        self._vals = [None]
        self._slot.clear()
        self._free.clear()
