"""An LRU list with a working region and a replace-first region.

CBLRU (Figs. 11-13) splits the recency list: the *working region* holds
the most recently used entries; the trailing *replace-first region* of
window size W is where victims are searched first.  Built on an
``OrderedDict`` so touch/insert/evict are O(1) and region iteration is
O(W).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, TypeVar

from repro._hot import HOT

__all__ = ["LruList"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruList(Generic[K, V]):
    """Ordered key->value map; last = most recently used."""

    def __init__(self, replace_window: int = 5) -> None:
        if replace_window < 1:
            raise ValueError("replace_window must be >= 1")
        self._od: OrderedDict[K, V] = OrderedDict()
        self.replace_window = replace_window

    def __len__(self) -> int:
        return len(self._od)

    def __contains__(self, key: K) -> bool:
        return key in self._od

    def get(self, key: K) -> V | None:
        """Look up without touching recency."""
        return self._od.get(key)

    def touch(self, key: K) -> V:
        """Mark ``key`` most recently used and return its value."""
        value = self._od[key]
        self._od.move_to_end(key)
        HOT.lru_node_moves += 1
        return value

    def insert(self, key: K, value: V) -> None:
        """Insert (or replace) as most recently used."""
        self._od[key] = value
        self._od.move_to_end(key)
        HOT.lru_node_moves += 1

    def pop(self, key: K) -> V:
        HOT.lru_node_moves += 1
        return self._od.pop(key)

    def pop_lru(self) -> tuple[K, V]:
        """Remove and return the least recently used item."""
        if not self._od:
            raise KeyError("pop_lru on empty LruList")
        HOT.lru_node_moves += 1
        return self._od.popitem(last=False)

    def peek_lru(self) -> tuple[K, V]:
        if not self._od:
            raise KeyError("peek_lru on empty LruList")
        key = next(iter(self._od))
        return key, self._od[key]

    def replace_first_region(self) -> list[tuple[K, V]]:
        """The W least-recently-used items, LRU first (Fig. 11's RFR)."""
        out: list[tuple[K, V]] = []
        for key in self._od:
            out.append((key, self._od[key]))
            if len(out) >= self.replace_window:
                break
        return out

    def items_lru_order(self) -> Iterator[tuple[K, V]]:
        """All items, least recently used first (the Fig. 13 fallback scan)."""
        for key in list(self._od):
            yield key, self._od[key]

    def keys(self) -> list[K]:
        return list(self._od)

    def clear(self) -> None:
        self._od.clear()
