"""Cache statistics, including the Table I situation matrix.

Table I classifies each query by where its data came from: S1/S3 are
result-cache hits (memory/SSD); S2 and S4-S9 are the seven combinations of
sources — memory, SSD, HDD — that served the query's inverted lists.  The
stats object counts every situation, accumulates its time cost, and
derives the hit ratios plotted in Fig. 14.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Situation", "CacheStats", "StatsRecorder"]


class Situation(enum.Enum):
    """The nine retrieval situations of Table I."""

    S1 = "result from memory"
    S2 = "lists from memory"
    S3 = "result from SSD"
    S4 = "lists from memory+SSD"
    S5 = "lists from SSD"
    S6 = "lists from memory+HDD"
    S7 = "lists from SSD+HDD"
    S8 = "lists from HDD"
    S9 = "lists from memory+SSD+HDD"

    @staticmethod
    def for_lists(mem: bool, ssd: bool, hdd: bool) -> "Situation":
        """Classify a computed query by the sources that served its lists."""
        match (mem, ssd, hdd):
            case (True, False, False):
                return Situation.S2
            case (True, True, False):
                return Situation.S4
            case (False, True, False):
                return Situation.S5
            case (True, False, True):
                return Situation.S6
            case (False, True, True):
                return Situation.S7
            case (False, False, True):
                return Situation.S8
            case (True, True, True):
                return Situation.S9
        raise ValueError("a computed query must read lists from somewhere")


@dataclass
class CacheStats:
    """Counters maintained by the cache manager."""

    queries: int = 0
    total_response_us: float = 0.0

    # result cache
    result_l1_hits: int = 0
    result_l2_hits: int = 0
    result_misses: int = 0

    # inverted-list cache (per term lookup)
    list_l1_hits: int = 0
    list_l2_hits: int = 0
    list_partial_hits: int = 0  # prefix from cache, tail from HDD
    list_misses: int = 0

    # SSD traffic bookkeeping
    ssd_result_writes: int = 0
    ssd_list_writes: int = 0
    ssd_writes_avoided: int = 0  # replaceable-state skip (Section VI.C)
    discarded_by_tev: int = 0

    # CBLRU list-victim search stages (Fig. 13): replaceable-in-RFR,
    # size-matched, assembled-from-RFR, whole-list fallback
    evict_stage_replaceable: int = 0
    evict_stage_size_match: int = 0
    evict_stage_assemble: int = 0
    evict_stage_fallback: int = 0

    # dynamic scenario (TTL, Section IV.B)
    expired_results: int = 0
    expired_lists: int = 0
    static_refreshes: int = 0

    situation_counts: dict[Situation, int] = field(
        default_factory=lambda: {s: 0 for s in Situation}
    )
    situation_time_us: dict[Situation, float] = field(
        default_factory=lambda: {s: 0.0 for s in Situation}
    )

    # -- recording -----------------------------------------------------------

    def record_query(self, situation: Situation, response_us: float) -> None:
        self.queries += 1
        self.total_response_us += response_us
        self.situation_counts[situation] += 1
        self.situation_time_us[situation] += response_us

    # -- derived metrics -----------------------------------------------------

    @property
    def result_lookups(self) -> int:
        return self.result_l1_hits + self.result_l2_hits + self.result_misses

    @property
    def list_lookups(self) -> int:
        return (self.list_l1_hits + self.list_l2_hits
                + self.list_partial_hits + self.list_misses)

    @property
    def result_hit_ratio(self) -> float:
        n = self.result_lookups
        return (self.result_l1_hits + self.result_l2_hits) / n if n else 0.0

    @property
    def list_hit_ratio(self) -> float:
        n = self.list_lookups
        return (self.list_l1_hits + self.list_l2_hits) / n if n else 0.0

    @property
    def combined_hit_ratio(self) -> float:
        """Hits over all data requests (the Fig. 14 'RIC' quantity)."""
        n = self.result_lookups + self.list_lookups
        if not n:
            return 0.0
        hits = (self.result_l1_hits + self.result_l2_hits
                + self.list_l1_hits + self.list_l2_hits)
        return hits / n

    @property
    def mean_response_us(self) -> float:
        return self.total_response_us / self.queries if self.queries else 0.0

    @property
    def throughput_qps(self) -> float:
        """Queries per second of simulated time."""
        if self.total_response_us <= 0:
            return 0.0
        return self.queries / (self.total_response_us / 1e6)

    def situation_table(self) -> list[tuple[str, float, float]]:
        """Table I rows: (situation, probability, mean time cost ms)."""
        rows = []
        for s in Situation:
            count = self.situation_counts[s]
            prob = count / self.queries if self.queries else 0.0
            mean_ms = (self.situation_time_us[s] / count / 1000.0) if count else 0.0
            rows.append((s.name, prob, mean_ms))
        return rows

    def reset(self) -> None:
        """Zero everything (used after warm-up phases)."""
        self.__init__()


class StatsRecorder:
    """Routes cache events into :class:`CacheStats` replacement counters.

    The layered caches announce SSD writes, avoided rewrites, TEV
    discards and victim-search stages on the
    :class:`~repro.core.events.CacheEvents` bus; this subscriber turns
    them into the counters the analysis layer reads, so the caches never
    update replacement statistics directly.
    """

    _STAGE_FIELDS = {
        "replaceable": "evict_stage_replaceable",
        "size-match": "evict_stage_size_match",
        "assemble": "evict_stage_assemble",
        "fallback": "evict_stage_fallback",
    }

    def __init__(self, stats: CacheStats, events) -> None:
        self.stats = stats
        self._unsubscribe = events.subscribe(
            on_admit=self._on_admit,
            on_evict=self._on_evict,
            on_flush=self._on_flush,
            on_l2_victim=self._on_l2_victim,
        )

    def _on_admit(self, event) -> None:
        if event.reason == "revalidate":
            self.stats.ssd_writes_avoided += 1

    def _on_evict(self, event) -> None:
        if event.reason == "tev":
            self.stats.discarded_by_tev += 1

    def _on_flush(self, event) -> None:
        if event.kind == "result":
            self.stats.ssd_result_writes += 1
        else:
            self.stats.ssd_list_writes += 1

    def _on_l2_victim(self, event) -> None:
        field_name = self._STAGE_FIELDS.get(event.stage)
        if field_name is not None:
            setattr(self.stats, field_name, getattr(self.stats, field_name) + 1)

    def close(self) -> None:
        self._unsubscribe()
