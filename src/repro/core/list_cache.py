"""The layered inverted-list cache: L1 prefixes and the SSD list region.

Owns the full L1<->L2 flow for inverted lists (Figs. 6b/7c): the memory
list cache holding frequency-sorted prefixes, the SSD list region (whole
flash blocks sized by Formula 1 for the cost-based policies, byte-granular
extents for the LRU baseline), CBSLRU's pinned static lists, and the HDD
tail reads for whatever the caches do not cover.  Admission decisions
come from the :class:`~repro.core.policies.AdmissionPolicy` (Formula 1/2
plus the TEV filter); victim selection is delegated to the active
:class:`~repro.core.policies.ReplacementPolicy`; life-cycle changes are
announced on the :class:`~repro.core.events.CacheEvents` bus.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import Scheme
from repro.core.entries import CachedList, EntryState
from repro.core.events import AdmitEvent, CacheEvents, EvictEvent, FlushEvent, L2VictimEvent
from repro.core.lru import LruList
from repro.core.selection import efficiency_value, ssd_cache_blocks
from repro.core.ssd_region import BlockRegion, ByteRegion
from repro.flash.constants import SECTOR_BYTES
from repro.obs.audit import NULL_AUDIT
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:
    from repro.core.config import CacheConfig
    from repro.core.policies import AdmissionPolicy, ReplacementPolicy
    from repro.core.stats import CacheStats
    from repro.engine.index import InvertedIndex

__all__ = ["ListCache"]


class ListCache:
    """Two-level inverted-list cache (query management, list side)."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy,
        selection: AdmissionPolicy,
        index: InvertedIndex,
        clock,
        mem,
        ssd,
        store,
        stats: CacheStats,
        events: CacheEvents,
        tracer=NULL_TRACER,
        audit=NULL_AUDIT,
    ) -> None:
        self.config = config
        self.policy = policy
        self.selection = selection
        self.index = index
        self.clock = clock
        self.mem = mem
        self.ssd = ssd
        self.store = store
        self.stats = stats
        self.events = events
        self.tracer = tracer
        self.audit = audit

        # ---- L1 (memory) ----
        self.l1: LruList[int, CachedList] = LruList(config.replace_window)
        self.l1_bytes = 0

        # ---- L2 (SSD) ---- the list region sits after the result region.
        if config.uses_ssd and policy.cost_based:
            list_base = config.ssd_result_blocks * (config.block_bytes // SECTOR_BYTES)
            self.region: BlockRegion | None = BlockRegion(
                base_lba=list_base,
                num_blocks=config.ssd_list_blocks,
                block_bytes=config.block_bytes,
            )
            self.byte_region: ByteRegion | None = None
        elif config.uses_ssd:
            self.region = None
            list_base = config.ssd_result_bytes // SECTOR_BYTES
            self.byte_region = ByteRegion(list_base, config.ssd_list_bytes)
        else:
            self.region = self.byte_region = None

        # Fig. 7c inverted-list mapping.
        self.l2: LruList[int, CachedList] = LruList(config.replace_window)
        # CBSLRU static partition (filled by warmup_static).
        self.static: dict[int, CachedList] = {}

    def _expired(self, entry) -> bool:
        return entry.expired(self.clock.now_us, self.config.ttl_us)

    # ------------------------------------------------------------------
    # Fetch (query management, list side)
    # ------------------------------------------------------------------

    def fetch(
        self, term_id: int, needed: int, total_bytes: int, pu: float
    ) -> tuple[bool, bool, bool]:
        """Bring the traversed prefix of one list in; returns source flags."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._fetch(term_id, needed, total_bytes, pu)
        with tracer.span("list.fetch", term=term_id, needed=needed) as span:
            flags = self._fetch(term_id, needed, total_bytes, pu)
            span.set(mem=flags[0], ssd=flags[1], hdd=flags[2])
        return flags

    def _fetch(
        self, term_id: int, needed: int, total_bytes: int, pu: float
    ) -> tuple[bool, bool, bool]:
        covered = 0
        src_mem = src_ssd = src_hdd = False

        l1 = self.l1.get(term_id)
        if l1 is not None and self._expired(l1):
            self.l1.pop(term_id)
            self.l1_bytes -= l1.cached_bytes
            self.events.evict(EvictEvent(kind="list", key=term_id, level="l1",
                                         nbytes=l1.cached_bytes, reason="expired"))
            self.drop_l2(term_id, trim=self.policy.trim_on_drop, reason="expired")
            self.stats.expired_lists += 1
            l1 = None
        if l1 is not None:
            self.l1.touch(term_id)
            l1.touch()
            served = min(needed, l1.cached_bytes)
            if served > 0:
                self.mem.read(0, served)
                src_mem = True
                covered = served
            if covered >= needed:
                self.stats.list_l1_hits += 1
                self.admit_l1(term_id, needed, total_bytes, pu, new_access=False)
                return src_mem, src_ssd, src_hdd

        stale_static: CachedList | None = None
        if self.config.uses_ssd:
            l2 = self.static.get(term_id)
            is_static = l2 is not None
            if is_static and self._expired(l2):
                # Pinned data is refreshed in place after the HDD re-read.
                stale_static = l2
                self.stats.expired_lists += 1
                l2 = None
                is_static = False
            if l2 is None and not stale_static:
                l2 = self.l2.get(term_id)
                if l2 is not None and self._expired(l2):
                    self.drop_l2(term_id, trim=self.policy.trim_on_drop,
                                 reason="expired")
                    self.stats.expired_lists += 1
                    l2 = None
            if l2 is not None and l2.cached_bytes > covered:
                take = min(needed, l2.cached_bytes) - covered
                self._read_l2_bytes(l2, covered, take)
                src_ssd = True
                covered += take
                l2.touch()
                if not is_static:
                    self.l2.touch(term_id)
                    if self.config.scheme is Scheme.EXCLUSIVE:
                        self.drop_l2(term_id, trim=True, reason="exclusive-promote")
                    elif self.policy.tracks_replaceable:
                        # The baseline has no replaceable-state tracking:
                        # a read-back entry stays NORMAL and gets fully
                        # rewritten on its next eviction (Section VI.C).
                        l2.state = EntryState.REPLACEABLE

        if covered < needed:
            src_hdd = True
            self._read_store_tail(term_id, needed, covered)
            if covered > 0:
                self.stats.list_partial_hits += 1
            else:
                self.stats.list_misses += 1
        elif src_ssd:
            self.stats.list_l2_hits += 1

        if stale_static is not None and src_hdd:
            # Rewrite the pinned blocks with the fresh data just read.
            for b in stale_static.blocks:
                self.ssd.write(self.region.lba_of(b), self.config.block_bytes)
            stale_static.created_us = self.clock.now_us
            self.stats.static_refreshes += 1

        self.admit_l1(term_id, needed, total_bytes, pu, new_access=l1 is None)
        return src_mem, src_ssd, src_hdd

    def _read_l2_bytes(self, entry: CachedList, offset: int, nbytes: int) -> None:
        """Read ``nbytes`` of a cached list starting at ``offset`` from SSD."""
        sb = self.config.block_bytes
        remaining = nbytes
        pos = offset
        while remaining > 0:
            if entry.blocks:
                blk = entry.blocks[min(pos // sb, len(entry.blocks) - 1)]
                lba = self.region.lba_of(blk) + (pos % sb) // SECTOR_BYTES
            else:
                assert entry.lba_byte is not None, "SSD list entry without placement"
                lba = entry.lba_byte + pos // SECTOR_BYTES
            chunk = min(remaining, sb - (pos % sb))
            self.ssd.read(lba, chunk)
            pos += chunk
            remaining -= chunk

    def _read_store_tail(self, term_id: int, needed: int, covered: int) -> None:
        """Read the uncached tail of a list from the index store (HDD)."""
        for lba, nbytes in self.index.layout.chunk_reads(term_id, needed):
            # Skip chunks entirely satisfied by the cached prefix.
            chunk_start = (lba - self.index.layout.extent(term_id).lba) * SECTOR_BYTES
            if chunk_start + nbytes <= covered:
                continue
            self.store.read(lba, nbytes)

    # ------------------------------------------------------------------
    # L1 admission and eviction
    # ------------------------------------------------------------------

    def admit_l1(
        self, term_id: int, needed: int, total_bytes: int, pu: float, new_access: bool
    ) -> None:
        """Insert/grow a list entry in the memory list cache."""
        cfg = self.config
        chunk = self.index.layout.chunk_bytes
        target = min(total_bytes, -(-needed // chunk) * chunk)
        if target > cfg.mem_list_bytes:
            # A single list larger than the whole cache is clamped to the
            # largest chunk multiple that fits (or skipped entirely).
            target = cfg.mem_list_bytes // chunk * chunk
            if target <= 0:
                return
        existing = self.l1.get(term_id)
        if existing is not None:
            growth = max(0, target - existing.cached_bytes)
            existing.cached_bytes = max(existing.cached_bytes, target)
            # Running means keep PU close to the term's realized behaviour.
            existing.pu += (pu - existing.pu) * 0.2
            existing.mean_needed_bytes += (needed - existing.mean_needed_bytes) * 0.25
            self.l1_bytes += growth
            self.l1.touch(term_id)
        else:
            entry = CachedList(
                term_id=term_id,
                cached_bytes=target,
                total_bytes=total_bytes,
                pu=pu,
                mean_needed_bytes=float(needed),
                created_us=self.clock.now_us,
            )
            self.l1.insert(term_id, entry)
            self.l1_bytes += target
            self.events.admit(AdmitEvent(kind="list", key=term_id, level="l1",
                                         nbytes=target))
            if cfg.scheme is Scheme.INCLUSIVE and cfg.uses_ssd:
                self.push_to_l2(entry)
        self._evict_to_fit(protect=term_id)

    def _evict_to_fit(self, protect: int | None = None) -> None:
        cfg = self.config
        while self.l1_bytes > cfg.mem_list_bytes and len(self.l1) > 1:
            victim_key = self.policy.pick_l1_list_victim(self.l1, protect, cfg)
            if victim_key is None:
                break
            victim = self.l1.pop(victim_key)
            self.l1_bytes -= victim.cached_bytes
            self.events.evict(EvictEvent(kind="list", key=victim_key, level="l1",
                                         nbytes=victim.cached_bytes,
                                         reason="capacity"))
            self._on_evicted(victim)

    def _on_evicted(self, victim: CachedList) -> None:
        cfg = self.config
        if not cfg.uses_ssd or victim.term_id in self.static:
            return
        if cfg.scheme is Scheme.INCLUSIVE:
            return
        self.push_to_l2(victim)

    # ------------------------------------------------------------------
    # L2 inverted-list cache (SSD side)
    # ------------------------------------------------------------------

    def push_to_l2(self, victim: CachedList) -> None:
        cfg = self.config
        decision = self.selection.select_list(
            si_bytes=victim.cached_bytes, pu=victim.formula1_pu, freq=victim.freq
        )
        if self.audit.enabled:
            # The Formula 1/2 admission verdict with its exact inputs: this
            # is the record `repro explain` reconstructs EV-vs-TEV from.
            self.audit.record(
                "list.select", "list", victim.term_id,
                si_bytes=victim.cached_bytes, pu=victim.formula1_pu,
                freq=victim.freq, sc_blocks=decision.sc_blocks,
                ev=decision.ev, tev=cfg.tev, admit=decision.admit,
                branch="admit" if decision.admit else "tev-discard",
            )
        if not decision.admit:
            self.events.evict(EvictEvent(kind="list", key=victim.term_id,
                                         level="l1", nbytes=victim.cached_bytes,
                                         reason="tev"))
            return
        existing = self.l2.get(victim.term_id)
        if existing is not None:
            covers = existing.cached_bytes >= min(
                victim.total_bytes, decision.sc_blocks * cfg.block_bytes
            )
            if (existing.state is EntryState.REPLACEABLE and covers
                    and self.policy.tracks_replaceable):
                # The data is still on flash: re-validate, skip the write.
                existing.state = EntryState.NORMAL
                existing.freq = max(existing.freq, victim.freq)
                self.l2.touch(victim.term_id)
                self.events.admit(AdmitEvent(kind="list", key=victim.term_id,
                                             level="l2",
                                             nbytes=existing.cached_bytes,
                                             reason="revalidate"))
                return
            self.drop_l2(victim.term_id, trim=self.policy.trim_on_drop,
                         reason="replaced")

        if not self.policy.cost_based:
            self._lru_to_ssd(victim)
        else:
            self._cb_to_ssd(victim, decision.sc_blocks)

    def _cb_to_ssd(self, victim: CachedList, sc_blocks: int) -> None:
        """Cost-based path: whole-block placement with Fig. 13 replacement."""
        cfg = self.config
        region = self.region
        if region is None or sc_blocks == 0 or sc_blocks > region.num_blocks:
            return
        if region.free_count < sc_blocks:
            self.policy.free_list_space(self, sc_blocks)
        blocks = region.alloc(sc_blocks)
        if blocks is None:
            return
        cached = min(victim.total_bytes, sc_blocks * cfg.block_bytes,
                     victim.cached_bytes)
        entry = CachedList(
            term_id=victim.term_id,
            cached_bytes=cached,
            total_bytes=victim.total_bytes,
            pu=victim.pu,
            freq=victim.freq,
            blocks=blocks,
            created_us=victim.created_us,
        )
        for b in blocks:
            self.ssd.write(region.lba_of(b), cfg.block_bytes)
        self.events.flush(FlushEvent(kind="list", lba=region.lba_of(blocks[0]),
                                     nbytes=cached, entries=len(blocks)))
        self.l2.insert(victim.term_id, entry)

    def _lru_to_ssd(self, victim: CachedList) -> None:
        """Baseline path: byte-granular placement, plain LRU eviction."""
        region = self.byte_region
        if region is None or region.size_sectors == 0:
            return
        nbytes = victim.cached_bytes
        if nbytes > region.size_sectors * SECTOR_BYTES:
            return
        lba = region.alloc(nbytes)
        while lba is None and len(self.l2) > 0:
            key, evicted = self.l2.pop_lru()
            region.free(evicted.lba_byte, evicted.cached_bytes)  # type: ignore[attr-defined]
            self.events.l2_victim(L2VictimEvent(kind="list", key=key, stage="lru"))
            lba = region.alloc(nbytes)
        if lba is None:
            return
        entry = CachedList(
            term_id=victim.term_id,
            cached_bytes=nbytes,
            total_bytes=victim.total_bytes,
            pu=victim.pu,
            freq=victim.freq,
            created_us=victim.created_us,
        )
        entry.lba_byte = lba
        self.ssd.write(lba, nbytes)
        self.events.flush(FlushEvent(kind="list", lba=lba, nbytes=nbytes))
        self.l2.insert(victim.term_id, entry)

    def drop_l2(self, term_id: int, trim: bool, reason: str = "invalidate") -> None:
        entry = self.l2.get(term_id)
        if entry is None:
            return
        self.l2.pop(term_id)
        cfg = self.config
        if entry.blocks:
            region = self.region
            if trim:
                for b in entry.blocks:
                    self.ssd.trim(region.lba_of(b), cfg.block_bytes)
            region.free(entry.blocks)
            entry.blocks = []
        elif hasattr(entry, "lba_byte"):
            if trim:
                self.ssd.trim(entry.lba_byte, entry.cached_bytes)
            self.byte_region.free(entry.lba_byte, entry.cached_bytes)
        self.events.evict(EvictEvent(kind="list", key=term_id, level="l2",
                                     nbytes=entry.cached_bytes, reason=reason))

    # ------------------------------------------------------------------
    # CBSLRU static partition (Section VI.C.2)
    # ------------------------------------------------------------------

    def place_static(self, term_freqs: dict[int, int]) -> dict:
        """Pin the highest-EV analysed terms into the static list blocks."""
        cfg = self.config
        placed = 0
        budget = int(cfg.ssd_list_blocks * cfg.static_fraction)
        chunk = self.index.layout.chunk_bytes
        ranked: list[tuple[float, int, int, int]] = []
        for term_id, freq in term_freqs.items():
            if freq < 2:
                continue
            info = self.index.lexicon.term(term_id)
            # Static entries hold the whole expected used prefix: the
            # analysis already tells us what a typical query needs.
            si = min(info.list_bytes,
                     -(-int(info.list_bytes * info.utilization) // chunk) * chunk)
            sc = ssd_cache_blocks(si, 1.0, cfg.block_bytes)
            if sc == 0:
                continue
            ranked.append((efficiency_value(freq, sc), term_id, sc, freq))
        ranked.sort(reverse=True)
        used = 0
        for ev, term_id, sc, freq in ranked:
            if ev < cfg.tev:
                break
            if used + sc > budget:
                continue
            blocks = self.region.alloc(sc)
            if blocks is None:
                break
            info = self.index.lexicon.term(term_id)
            self.static[term_id] = CachedList(
                term_id=term_id,
                cached_bytes=min(info.list_bytes, sc * cfg.block_bytes),
                total_bytes=info.list_bytes,
                pu=info.utilization,
                freq=freq,
                blocks=blocks,
                static=True,
                created_us=self.clock.now_us,
            )
            for b in blocks:
                self.ssd.write(self.region.lba_of(b), cfg.block_bytes)
            self.events.admit(AdmitEvent(kind="list", key=term_id, level="static",
                                         nbytes=sc * cfg.block_bytes))
            used += sc
            placed += 1
        return {
            "static_lists": placed,
            "static_list_blocks": used,
            "static_list_blocks_budget": budget,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """L1 accounting, capacity, and SSD block-region consistency."""
        cfg = self.config
        l1_bytes = sum(e.cached_bytes for _, e in self.l1.items_lru_order())
        if l1_bytes != self.l1_bytes:
            raise AssertionError("L1 list byte accounting out of sync")
        if l1_bytes > cfg.mem_list_bytes and len(self.l1) > 1:
            raise AssertionError("L1 list cache over capacity")

        if not cfg.uses_ssd:
            return

        # Block-region consistency (cost-based placement).
        if self.region is not None:
            held: list[int] = []
            for _, entry in self.l2.items_lru_order():
                held.extend(entry.blocks)
            for entry in self.static.values():
                held.extend(entry.blocks)
            if len(held) != len(set(held)):
                raise AssertionError("SSD list block allocated twice")
            if len(held) + self.region.free_count > self.region.num_blocks:
                raise AssertionError("SSD list region block count leak")

    def occupancy(self) -> dict:
        return {
            "l1_list_bytes": self.l1_bytes,
            "l1_lists": len(self.l1),
            "l2_lists": len(self.l2),
            "static_lists": len(self.static),
        }
