"""Pluggable cache policies (admission + replacement).

The protocols (:class:`AdmissionPolicy`, :class:`ReplacementPolicy`) and
the registry live here; the three paper policies ship as built-ins:

* :class:`LruPolicy` — the conventional baseline;
* :class:`CblruPolicy` — cost-based LRU (Formula 1/2, TEV, IREN,
  staged list victims);
* :class:`CbslruPolicy` — CBLRU plus the pinned static partition.

Register a custom policy with :func:`register_policy` and select it by
name via ``CacheConfig(policy="yourname")``.
"""

from repro.core.policies.base import (
    AdmissionPolicy,
    BaseReplacementPolicy,
    ReplacementPolicy,
)
from repro.core.policies.cblru import CblruPolicy
from repro.core.policies.cbslru import CbslruPolicy
from repro.core.policies.lru import LruPolicy
from repro.core.policies.registry import (
    available_policies,
    create_policy,
    register_policy,
    unregister_policy,
)

__all__ = [
    "AdmissionPolicy",
    "ReplacementPolicy",
    "BaseReplacementPolicy",
    "LruPolicy",
    "CblruPolicy",
    "CbslruPolicy",
    "register_policy",
    "unregister_policy",
    "create_policy",
    "available_policies",
]

register_policy(LruPolicy.name, LruPolicy, overwrite=True)
register_policy(CblruPolicy.name, CblruPolicy, overwrite=True)
register_policy(CbslruPolicy.name, CbslruPolicy, overwrite=True)
