"""Replacement-policy registry.

``CacheConfig.policy`` is resolved here, so a new policy is one class
plus one :func:`register_policy` call — no cache-manager edits:

    from repro.core.policies import BaseReplacementPolicy, register_policy

    class FifoPolicy(BaseReplacementPolicy):
        name = "fifo"
        ...

    register_policy("fifo", FifoPolicy)
    cfg = CacheConfig(policy="fifo", ...)   # resolved via the registry

Built-in :class:`repro.core.config.Policy` members are str-valued enums,
so they resolve through the same string keys.
"""

from __future__ import annotations

from typing import Callable

from repro.core.policies.base import ReplacementPolicy

__all__ = [
    "register_policy",
    "unregister_policy",
    "create_policy",
    "available_policies",
]

_REGISTRY: dict[str, Callable[[], ReplacementPolicy]] = {}


def _canonical(name: object) -> str:
    """Registry key for an enum member, a plain string, or a policy."""
    value = getattr(name, "value", name)
    return str(value).lower()


def register_policy(
    name: str, factory: Callable[[], ReplacementPolicy], *, overwrite: bool = False
) -> None:
    """Register a zero-argument policy factory (usually the class itself)."""
    key = _canonical(name)
    if not key:
        raise ValueError("policy name cannot be empty")
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"policy {key!r} is already registered")
    _REGISTRY[key] = factory


def unregister_policy(name: str) -> None:
    """Remove a registered policy (primarily for test hygiene)."""
    _REGISTRY.pop(_canonical(name), None)


def create_policy(policy: object) -> ReplacementPolicy:
    """Instantiate the policy named by ``CacheConfig.policy``.

    Accepts a :class:`~repro.core.config.Policy` member, a registered
    name string, or an already-built :class:`ReplacementPolicy` instance
    (passed through unchanged).
    """
    if isinstance(policy, ReplacementPolicy) and not isinstance(policy, (str, bytes)):
        return policy
    key = _canonical(policy)
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {policy!r}; registered: {available_policies()}"
        ) from None
    return factory()


def available_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)
