"""CBLRU — the paper's cost-based LRU (Section VI, Figs. 11-13).

Whole-block placement sized by Formula 1, the TEV admission filter,
working/replace-first LRU regions, IREN-ranked result-block victims and
the staged list victim search.  All of that machinery lives in
:class:`repro.core.policies.base.BaseReplacementPolicy`; CBLRU is its
canonical instantiation.
"""

from __future__ import annotations

from repro.core.policies.base import BaseReplacementPolicy

__all__ = ["CblruPolicy"]


class CblruPolicy(BaseReplacementPolicy):
    """Cost-based LRU with dynamic partitions only."""

    name = "cblru"
    cost_based = True
    tracks_replaceable = True
    trim_on_drop = True
    supports_static = False
