"""The LRU baseline policy (the Fig. 14b/17/19 comparand).

Byte-granular SSD placement, no replaceable-state tracking, no TRIM on
drop, and strict recency-order victims: exactly the conventional
SSD-as-disk-cache configuration the paper measures against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.policies.base import BaseReplacementPolicy

if TYPE_CHECKING:
    from repro.core.config import CacheConfig
    from repro.core.lru import LruList

__all__ = ["LruPolicy"]


class LruPolicy(BaseReplacementPolicy):
    """Plain LRU over both tiers with byte-granular SSD extents."""

    name = "lru"
    cost_based = False
    tracks_replaceable = False
    trim_on_drop = False
    supports_static = False

    def pick_l1_list_victim(
        self, lists: LruList, protect: int | None, config: CacheConfig
    ) -> int | None:
        for key, _ in lists.items_lru_order():
            if key != protect:
                if self.audit.enabled:
                    self.audit.record("list.l1-victim", "list", key,
                                      branch="lru", protect=protect)
                return key
        return None
