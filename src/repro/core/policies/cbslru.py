"""CBSLRU — CBLRU plus the pinned static partition (Section VI.C.2).

Identical replacement behaviour to CBLRU for the dynamic partition; in
addition ``supports_static`` unlocks :meth:`CacheManager.warmup_static`,
which analyses a query log and pins the hottest results and highest-EV
lists into a frozen fraction of each SSD region.
"""

from __future__ import annotations

from repro.core.policies.cblru import CblruPolicy

__all__ = ["CbslruPolicy"]


class CbslruPolicy(CblruPolicy):
    """Cost-based LRU with a static (pinned) partition."""

    name = "cbslru"
    supports_static = True
