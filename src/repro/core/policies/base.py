"""Admission and replacement policy protocols.

A cache policy splits into two pluggable pieces:

* an :class:`AdmissionPolicy` decides *whether and how much* of a
  memory-evicted entry goes to the SSD tier (the paper's selection
  management: Formula 1 sizing, Formula 2's EV, the TEV filter);
* a :class:`ReplacementPolicy` decides *which victims make room* — in
  the memory tier (L1 list victims), the SSD result region (Fig. 11's
  IREN-ranked RBs) and the SSD list region (Fig. 13's staged search).

:class:`BaseReplacementPolicy` supplies the shared cost-based defaults
so a concrete policy only overrides what differs.  Third-party policies
subclass it (or implement the protocol structurally) and register a
factory with :func:`repro.core.policies.register_policy`; the cache
manager resolves ``CacheConfig.policy`` through that registry, so no
manager code changes when a policy is added.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.events import L2VictimEvent
from repro.core.selection import SelectionDecision, SelectionPolicy
from repro.obs.audit import NULL_AUDIT

if TYPE_CHECKING:
    from repro.core.config import CacheConfig
    from repro.core.list_cache import ListCache
    from repro.core.lru import LruList

__all__ = ["AdmissionPolicy", "ReplacementPolicy", "BaseReplacementPolicy"]


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Selection management: SSD admission of memory-evicted lists."""

    def select_list(self, si_bytes: int, pu: float, freq: int) -> SelectionDecision:
        """Decide admission, placement size (SC blocks) and EV."""
        ...


@runtime_checkable
class ReplacementPolicy(Protocol):
    """Replacement management: victim selection across both tiers."""

    #: registry key and display name
    name: str
    #: True -> whole-block SSD placement (Formula 1); False -> the
    #: byte-granular baseline layout
    cost_based: bool
    #: True -> SSD copies read back to memory turn REPLACEABLE and can be
    #: re-validated without a rewrite (Section VI.C)
    tracks_replaceable: bool
    #: True -> dropped SSD entries are TRIMmed so FTL GC can skip them
    trim_on_drop: bool
    #: True -> the policy uses warmup_static's pinned partition (CBSLRU)
    supports_static: bool

    def build_admission(self, config: CacheConfig) -> AdmissionPolicy: ...

    def pick_l1_list_victim(
        self, lists: LruList, protect: int | None, config: CacheConfig
    ) -> int | None: ...

    def pick_rb_victim(self, rb_lru: LruList) -> int: ...

    def free_list_space(self, cache: ListCache, sc_needed: int) -> None: ...


class BaseReplacementPolicy:
    """Shared victim-search machinery of the cost-based policies."""

    name = "base"
    cost_based = True
    tracks_replaceable = True
    trim_on_drop = True
    supports_static = False
    #: Decision audit log (repro.obs.audit); the manager replaces this
    #: per instance when telemetry is attached.  Disabled by default so
    #: victim walks stay allocation-free.
    audit = NULL_AUDIT

    def build_admission(self, config: CacheConfig) -> AdmissionPolicy:
        return SelectionPolicy(
            block_bytes=config.block_bytes,
            tev=config.tev,
            cost_based=self.cost_based,
        )

    def pick_l1_list_victim(
        self, lists: LruList, protect: int | None, config: CacheConfig
    ) -> int | None:
        """Fig. 12: the minimum-EV entry inside the replace-first region."""
        auditing = self.audit.enabled
        candidates: list[tuple[int, float]] = [] if auditing else None
        best_key = None
        best_ev = float("inf")
        sb = config.block_bytes
        for key, entry in lists.replace_first_region():
            if key == protect:
                continue
            # Formula 1 + 2 inlined (same arithmetic as ssd_cache_blocks /
            # efficiency_value, whose range checks are guaranteed here by
            # CachedList.__post_init__): this walk evaluates every RFR
            # candidate on every L1 eviction, so the call + validation
            # overhead of the module functions dominates it.
            si = entry.cached_bytes
            sc = -(-int(si * entry.formula1_pu) // sb) if si > 0 else 0
            if sc < 1:
                sc = 1
            ev = entry.freq / sc
            if auditing:
                candidates.append((key, ev))
            if ev < best_ev:
                best_ev = ev
                best_key = key
        branch = "rfr-min-ev"
        if best_key is None:
            branch = "lru-fallback"
            for key, _ in lists.items_lru_order():
                if key != protect:
                    best_key = key
                    break
        if auditing and best_key is not None:
            self.audit.record(
                "list.l1-victim", "list", best_key,
                branch=branch, protect=protect, candidates=candidates,
                ev=best_ev if branch == "rfr-min-ev" else None,
            )
        return best_key

    def pick_rb_victim(self, rb_lru: LruList) -> int:
        """Fig. 11: the maximum-IREN result block in the RFR."""
        auditing = self.audit.enabled
        candidates: list[tuple[int, int]] = [] if auditing else None
        victim_id = None
        best_iren = -1
        for rb_id, rb in rb_lru.replace_first_region():
            if auditing:
                candidates.append((rb_id, rb.iren))
            if rb.iren > best_iren:
                best_iren = rb.iren
                victim_id = rb_id
        branch = "rfr-max-iren"
        if victim_id is None:
            branch = "lru-fallback"
            victim_id, _ = rb_lru.peek_lru()
        if auditing:
            self.audit.record(
                "rb.victim", "rb", victim_id,
                branch=branch, candidates=candidates,
                iren=best_iren if branch == "rfr-max-iren" else None,
            )
        return victim_id

    def free_list_space(self, cache: ListCache, sc_needed: int) -> None:
        """The staged victim search of Fig. 13.

        1) REPLACEABLE entries in the replace-first region; 2) a NORMAL
        RFR entry of exactly the needed size; 3) assembling several RFR
        entries; 4) the whole-list fallback.
        """
        from repro.core.entries import EntryState

        region = cache.region
        if self.audit.enabled:
            # The staged search context; each victim it claims follows as
            # an `l2-victim` record carrying its Fig. 13 stage.
            self.audit.record(
                "list.free-space", "list", None,
                sc_needed=sc_needed, free_blocks=region.free_count,
            )
        # Stage 1: replaceable entries in the RFR are free wins.
        for key, entry in cache.l2.replace_first_region():
            if region.free_count >= sc_needed:
                return
            if entry.state is EntryState.REPLACEABLE:
                cache.drop_l2(key, trim=True)
                cache.events.l2_victim(
                    L2VictimEvent(kind="list", key=key, stage="replaceable")
                )
        if region.free_count >= sc_needed:
            return
        # Stage 2: a NORMAL RFR entry of exactly the missing size.
        deficit = sc_needed - region.free_count
        for key, entry in cache.l2.replace_first_region():
            if len(entry.blocks) == deficit:
                cache.drop_l2(key, trim=True)
                cache.events.l2_victim(
                    L2VictimEvent(kind="list", key=key, stage="size-match")
                )
                return
        # Stage 3: assemble several RFR entries.
        for key, _ in cache.l2.replace_first_region():
            if region.free_count >= sc_needed:
                return
            cache.drop_l2(key, trim=True)
            cache.events.l2_victim(
                L2VictimEvent(kind="list", key=key, stage="assemble")
            )
        # Stage 4: widen to the whole LRU list (the paper's worst case).
        for key, _ in list(cache.l2.items_lru_order()):
            if region.free_count >= sc_needed:
                return
            cache.drop_l2(key, trim=True)
            cache.events.l2_victim(
                L2VictimEvent(kind="list", key=key, stage="fallback")
            )
