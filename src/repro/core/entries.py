"""Cache-entry records — the values of the Fig. 6/7 mapping tables.

``CachedResult`` and ``CachedList`` are deliberately mutable: access
frequency, utilization and placement state change on every touch, and the
mappings hold the same object identity across LRU moves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EntryState", "CachedResult", "CachedList", "ResultBlock"]


class EntryState(enum.Enum):
    """Placement state of SSD-resident data (Fig. 8/9).

    NORMAL — valid and read-only; REPLACEABLE — read back to memory or
    invalidated, preferred overwrite target; (FREE space is tracked by the
    region allocators, not per entry).
    """

    NORMAL = "normal"
    REPLACEABLE = "replaceable"


@dataclass
class CachedResult:
    """A result entry as tracked by memory and SSD result mappings.

    Memory mapping (Fig. 6a): key -> (R, freq).  SSD mapping (Fig. 7a):
    key -> (ptr, freq, RB#); ``rb_id``/``slot`` locate it inside a result
    block, ``lba`` is the device pointer.
    """

    query_key: tuple[int, ...]
    nbytes: int
    freq: int = 1
    # SSD placement (None while memory-only)
    rb_id: int | None = None
    slot: int | None = None
    lba: int | None = None
    state: EntryState = EntryState.NORMAL
    #: static CBSLRU entries are never evicted or overwritten
    static: bool = False
    #: simulated time the underlying *data* was produced (TTL anchor);
    #: copies across levels inherit it — age is a data property
    created_us: float = 0.0

    @property
    def on_ssd(self) -> bool:
        return self.rb_id is not None or self.lba is not None

    def touch(self) -> None:
        self.freq += 1

    def expired(self, now_us: float, ttl_us: float) -> bool:
        """Dynamic scenario (Section IV.B): data older than TTL is stale."""
        return ttl_us > 0 and now_us - self.created_us > ttl_us


@dataclass
class CachedList:
    """An inverted-list cache entry (Fig. 6b / 7c).

    ``cached_bytes`` is the length of the frequency-sorted prefix held at
    this level; ``total_bytes`` the full on-disk list (the "size" field);
    ``pu`` the utilization rate used by Formula 1.
    """

    term_id: int
    cached_bytes: int
    total_bytes: int
    pu: float
    freq: int = 1
    #: running mean of per-query traversal need (drives Formula 1's PU:
    #: the fraction of the memory-resident prefix a typical query uses)
    mean_needed_bytes: float = 0.0
    # SSD placement: the cache-file blocks holding the prefix, in order
    # (cost-based policies) ...
    blocks: list[int] = field(default_factory=list)
    # ... or a byte-granular extent start (LRU baseline placement)
    lba_byte: int | None = None
    state: EntryState = EntryState.NORMAL
    static: bool = False
    #: simulated time this list data was read from the index store
    created_us: float = 0.0

    def __post_init__(self) -> None:
        if self.cached_bytes < 0 or self.total_bytes <= 0:
            raise ValueError("sizes must be positive")
        if not 0.0 < self.pu <= 1.0:
            raise ValueError(f"pu must be in (0, 1]: {self.pu}")

    @property
    def on_ssd(self) -> bool:
        return bool(self.blocks) or self.lba_byte is not None

    @property
    def formula1_pu(self) -> float:
        """PU for Formula 1: typical per-query use of the cached prefix."""
        if self.cached_bytes <= 0 or self.mean_needed_bytes <= 0:
            return self.pu
        return min(1.0, self.mean_needed_bytes / self.cached_bytes)

    def touch(self) -> None:
        self.freq += 1

    def covers(self, needed_bytes: int) -> bool:
        """Whether the cached prefix satisfies a traversal of ``needed_bytes``."""
        return self.cached_bytes >= needed_bytes

    def expired(self, now_us: float, ttl_us: float) -> bool:
        """Dynamic scenario (Section IV.B): data older than TTL is stale."""
        return ttl_us > 0 and now_us - self.created_us > ttl_us


@dataclass
class ResultBlock:
    """A 128 KB logic result block (RB) on SSD (Fig. 7b).

    ``flags`` is the validity bitmap — one bit per slot, 1 = the slot
    holds a live (NORMAL) result entry.  IREN (invalid result entry
    number) of Fig. 11 is the number of zero bits among occupied slots
    plus freed slots; since replaced/read-back entries clear their bit,
    ``slots - popcount(flags)`` is exactly IREN.
    """

    rb_id: int
    lba: int
    num_slots: int
    flags: int = 0
    #: query keys by slot (None = never used or invalidated)
    entries: list[tuple[int, ...] | None] = field(default_factory=list)
    static: bool = False

    def __post_init__(self) -> None:
        if self.num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if not self.entries:
            self.entries = [None] * self.num_slots
        if len(self.entries) != self.num_slots:
            raise ValueError("entries length must equal num_slots")

    @property
    def valid_count(self) -> int:
        return bin(self.flags).count("1")

    @property
    def iren(self) -> int:
        """Invalid result entry number — Fig. 11's victim-ranking key."""
        return self.num_slots - self.valid_count

    def set_valid(self, slot: int, key: tuple[int, ...]) -> None:
        self._check_slot(slot)
        self.flags |= 1 << slot
        self.entries[slot] = key

    def clear_valid(self, slot: int) -> None:
        self._check_slot(slot)
        self.flags &= ~(1 << slot)

    def is_valid(self, slot: int) -> bool:
        self._check_slot(slot)
        return bool(self.flags >> slot & 1)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.num_slots})")
