"""Block-mapping FTL [7].

One logical block maps to one physical block and pages keep their in-block
offset.  In-place programming is possible only while the target page is
still FREE; any overwrite forces a read-modify-write of the whole block
(copy-merge into a fresh block + erase).  This gives the low SRAM footprint
the paper cites, at the cost of terrible random-write behaviour — which is
exactly what the FTL ablation bench demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro._hot import HOT
from repro.flash.constants import FlashConfig
from repro.flash.ftl_base import FTL
from repro.flash.gc import VictimPolicy
from repro.flash.nand import PageState

__all__ = ["BlockMappingFTL"]

_UNMAPPED = -1


class BlockMappingFTL(FTL):
    """Classic block-level mapping with copy-merge on overwrite."""

    def __init__(
        self,
        config: FlashConfig,
        victim_policy: VictimPolicy | None = None,
    ) -> None:
        super().__init__(config, victim_policy)
        ppb = config.pages_per_block
        self.num_lblocks = self.num_lpns // ppb
        self._l2b = np.full(self.num_lblocks, _UNMAPPED, dtype=np.int64)
        self._mapped = 0

    # -- host operations -----------------------------------------------------

    def read(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        lbn, off = divmod(lpn, self.config.pages_per_block)
        pb = int(self._l2b[lbn])
        if pb == _UNMAPPED:
            self.stats.host_page_reads += 1
            return self.config.read_us
        ppn = pb * self.config.pages_per_block + off
        if self.nand.state(ppn) != PageState.VALID:
            self.stats.host_page_reads += 1
            return self.config.read_us
        self.nand.read_page(ppn)
        self.stats.host_page_reads += 1
        return self.config.read_us

    def write(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        ppb = self.config.pages_per_block
        lbn, off = divmod(lpn, ppb)
        pb = int(self._l2b[lbn])
        latency = 0.0
        if pb == _UNMAPPED:
            pb = self._take_free_block()
            self._l2b[lbn] = pb
            self.nand.program_page_at(pb, off)
            self._mapped += 1
            self.stats.host_page_writes += 1
            return latency + self.config.write_us

        ppn = pb * ppb + off
        state = self.nand.state(ppn)
        if state == PageState.FREE:
            self.nand.program_page_at(pb, off)
            self._mapped += 1
            self.stats.host_page_writes += 1
            return latency + self.config.write_us

        # Overwrite: copy-merge the block into a fresh one.
        latency += self._copy_merge(lbn, pb, new_data_offset=off)
        self.stats.host_page_writes += 1
        latency += self.config.write_us
        return latency

    def trim(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        ppb = self.config.pages_per_block
        lbn, off = divmod(lpn, ppb)
        pb = int(self._l2b[lbn])
        if pb == _UNMAPPED:
            return 0.0
        ppn = pb * ppb + off
        if self.nand.state(ppn) != PageState.VALID:
            return 0.0
        self.nand.invalidate_page(ppn)
        self._mapped -= 1
        self.stats.trimmed_pages += 1
        latency = 0.0
        if self.nand.valid_count(pb) == 0:
            self.nand.erase_block(pb)
            self._release_block(pb)
            self._l2b[lbn] = _UNMAPPED
            self.stats.block_erases += 1
            latency += self.config.erase_us
        return latency

    def mapped_lpn_count(self) -> int:
        return self._mapped

    def physical_block_of(self, lbn: int) -> int:
        """Physical block backing logical block ``lbn`` (-1 if unmapped)."""
        return int(self._l2b[lbn])

    # -- internals ----------------------------------------------------------------

    def _copy_merge(self, lbn: int, old_pb: int, new_data_offset: int) -> float:
        """Move logical block ``lbn`` to a fresh physical block.

        Copies every VALID page except ``new_data_offset`` (the caller is
        about to program fresh data there), erases the old block, and
        installs the new mapping.  Returns copy+erase time; the caller adds
        the time for the new page program itself.
        """
        ppb = self.config.pages_per_block
        latency = 0.0
        new_pb = self._take_free_block()
        for off in range(ppb):
            ppn = old_pb * ppb + off
            if self.nand.state(ppn) != PageState.VALID:
                continue
            self.nand.invalidate_page(ppn)
            if off == new_data_offset:
                self._mapped -= 1  # superseded by the incoming write
                continue
            self.nand.read_page(ppn)
            self.stats.gc_page_reads += 1
            latency += self.config.read_us
            self.nand.program_page_at(new_pb, off)
            self.stats.gc_page_writes += 1
            latency += self.config.write_us
        self.nand.erase_block(old_pb)
        self._release_block(old_pb)
        self.stats.block_erases += 1
        latency += self.config.erase_us
        self._l2b[lbn] = new_pb
        self.nand.program_page_at(new_pb, new_data_offset)
        self._mapped += 1
        self.stats.full_merges += 1
        return latency
