"""Sector-addressed SSD device built on a pluggable FTL.

This is the component the rest of the system talks to: the cache manager's
L2 store, the "index on SSD" configuration of Fig. 15/16/18, and the
trace-replay target.  It converts (lba, nbytes) host requests into per-page
FTL operations, accumulates service time on a virtual clock, and exposes
the erase-count and mean-access-time series plotted in Fig. 19.
"""

from __future__ import annotations

from typing import Callable

from repro.flash.constants import SECTOR_BYTES, FlashConfig
from repro.flash.ftl_base import FTL
from repro.flash.ftl_block import BlockMappingFTL
from repro.flash.ftl_dftl import DFTL
from repro.flash.ftl_fast import FastFTL
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.wear import WearReport, wear_report
from repro.sim.clock import VirtualClock
from repro.sim.counters import CounterSet

__all__ = ["SimulatedSSD", "FTL_FACTORIES"]

FTL_FACTORIES: dict[str, Callable[[FlashConfig], FTL]] = {
    "page": PageMappingFTL,
    "block": BlockMappingFTL,
    "fast": FastFTL,
    "dftl": DFTL,
}


class SimulatedSSD:
    """A block device: page-granular FTL behind a 512 B-sector interface.

    Parameters
    ----------
    config:
        Flash geometry/timing (defaults to the paper's Table III).
    ftl:
        Either an :class:`~repro.flash.ftl_base.FTL` instance or one of the
        factory names ``page`` (paper baseline), ``block``, ``fast``,
        ``dftl``.
    clock:
        Virtual clock to charge; a private one is created if omitted.
    """

    def __init__(
        self,
        config: FlashConfig | None = None,
        ftl: FTL | str = "page",
        clock: VirtualClock | None = None,
        name: str = "ssd",
    ) -> None:
        self.config = config or FlashConfig()
        if isinstance(ftl, str):
            try:
                factory = FTL_FACTORIES[ftl]
            except KeyError:
                raise ValueError(
                    f"unknown FTL {ftl!r}; choose from {sorted(FTL_FACTORIES)}"
                ) from None
            self.ftl = factory(self.config)
        else:
            if ftl.config is not self.config and ftl.config != self.config:
                raise ValueError("FTL was built with a different FlashConfig")
            self.ftl = ftl
        self.clock = clock or VirtualClock()
        self.name = name
        self.counters = CounterSet()
        #: Optional span tracer (repro.obs); None keeps the hot path bare.
        self.tracer = None
        self.ftl.audit_device = name
        # Hot-path caches: the FTL and clock are fixed for the device's
        # lifetime, so the span entry points are resolved once.  Counter
        # refs are resolved lazily (first op of each type) so devices
        # that never see an op type keep identical counter snapshots.
        self._read_span = getattr(self.ftl, "read_span", None)
        self._write_span = getattr(self.ftl, "write_span", None)
        self._trim_span = getattr(self.ftl, "trim_span", None)
        self._set_time = self.ftl.set_time
        self._read_ctrs = None
        self._write_ctrs = None
        self._trim_ctrs = None

    @property
    def audit(self):
        """Decision audit hook, forwarded to the FTL's GC (repro.obs)."""
        return self.ftl.audit

    @audit.setter
    def audit(self, audit) -> None:
        self.ftl.audit = audit
        self.ftl.audit_device = self.name

    # -- capacity ------------------------------------------------------------

    @property
    def service_lanes(self) -> int:
        """Concurrent host requests the device can serve: one per
        channel x plane pair (the kernel's lane count for this device)."""
        return self.config.channels * self.config.planes_per_channel

    @property
    def capacity_bytes(self) -> int:
        """User-visible capacity."""
        return self.config.logical_bytes

    @property
    def num_sectors(self) -> int:
        return self.config.logical_sectors

    # -- host I/O --------------------------------------------------------------

    def _page_span(self, lba: int, nbytes: int) -> range:
        """Logical page numbers touched by ``nbytes`` starting at sector ``lba``."""
        if lba < 0 or nbytes <= 0:
            raise ValueError(f"invalid request lba={lba} nbytes={nbytes}")
        start_byte = lba * SECTOR_BYTES
        end_byte = start_byte + nbytes
        if end_byte > self.capacity_bytes:
            raise ValueError(
                f"request [{start_byte}, {end_byte}) exceeds capacity "
                f"{self.capacity_bytes}"
            )
        first = start_byte // self.config.page_bytes
        last = (end_byte - 1) // self.config.page_bytes
        return range(first, last + 1)

    def read(self, lba: int, nbytes: int) -> float:
        """Read ``nbytes`` at sector ``lba``; returns service time in us."""
        self._set_time(self.clock.now_us)
        pages = self._page_span(lba, nbytes)
        read_span = self._read_span
        if read_span is not None:
            latency = read_span(pages.start, len(pages))
        else:
            latency = 0.0
            for lpn in pages:
                latency += self.ftl.read(lpn)
        ctrs = self._read_ctrs
        if ctrs is None:
            ctrs = self._read_ctrs = (self.counters["read_ops"],
                                      self.counters["read_pages"],
                                      self.counters["access_time_us"])
        ctrs[0].add(nbytes)
        ctrs[1].add(0.0, n=len(pages))
        ctrs[2].add(latency)
        self.clock.consume(self.name, latency)
        if self.tracer is not None:
            now = self.clock.now_us
            self.tracer.record(f"{self.name}.read", now - latency, now,
                               lba=lba, nbytes=nbytes, pages=len(pages))
        return latency

    def write(self, lba: int, nbytes: int) -> float:
        """Write ``nbytes`` at sector ``lba``; returns service time in us."""
        self._set_time(self.clock.now_us)
        pages = self._page_span(lba, nbytes)
        tr = self.tracer
        erases_before = self.ftl.erase_count_total if tr is not None else 0
        write_span = self._write_span
        if write_span is not None:
            latency = write_span(pages.start, len(pages))
        else:
            latency = 0.0
            for lpn in pages:
                latency += self.ftl.write(lpn)
        ctrs = self._write_ctrs
        if ctrs is None:
            ctrs = self._write_ctrs = (self.counters["write_ops"],
                                       self.counters["write_pages"],
                                       self.counters["access_time_us"])
        ctrs[0].add(nbytes)
        ctrs[1].add(0.0, n=len(pages))
        ctrs[2].add(latency)
        self.clock.consume(self.name, latency)
        if tr is not None:
            # FTL activity rides on the span: GC erases triggered by this
            # host write show up as an attribute, not a guess.
            now = self.clock.now_us
            attrs = {"lba": lba, "nbytes": nbytes, "pages": len(pages)}
            erased = self.ftl.erase_count_total - erases_before
            if erased:
                attrs["gc_erases"] = erased
            tr.record(f"{self.name}.write", now - latency, now, **attrs)
        return latency

    def trim(self, lba: int, nbytes: int) -> float:
        """TRIM ``nbytes`` at sector ``lba``.  Partial pages are kept."""
        self._set_time(self.clock.now_us)
        start_byte = lba * SECTOR_BYTES
        end_byte = start_byte + nbytes
        # Only whole pages strictly inside the range may be discarded.
        first = -(-start_byte // self.config.page_bytes)
        last = end_byte // self.config.page_bytes
        latency = 0.0
        if last > first:
            trim_span = self._trim_span
            if trim_span is not None:
                latency = trim_span(first, last - first)
            else:
                for lpn in range(first, last):
                    latency += self.ftl.trim(lpn)
        ctrs = self._trim_ctrs
        if ctrs is None:
            ctrs = self._trim_ctrs = (self.counters["trim_ops"],
                                      self.counters["access_time_us"])
        ctrs[0].add(nbytes)
        ctrs[1].add(latency)
        self.clock.consume(self.name, latency)
        return latency

    def idle_collect(self, budget_us: float) -> float:
        """Run background GC during host idle time.

        The time is charged to the ``<name>-bg`` busy channel but does
        not advance the clock: it overlaps with host think time.  Erase
        wear is accounted normally.  Returns the idle time consumed
        (0.0 when the installed FTL has no background GC).
        """
        self.ftl.set_time(self.clock.now_us)
        bg = getattr(self.ftl, "background_collect", None)
        if bg is None:
            return 0.0
        used = bg(budget_us)
        self.counters.add("bg_gc_us", used)
        self.clock.charge(f"{self.name}-bg", used)
        if self.tracer is not None and used > 0:
            # Overlapped with host think time: zero-duration marker span.
            now = self.clock.now_us
            self.tracer.record(f"{self.name}.bg-gc", now, now, used_us=used)
        return used

    # -- reporting -----------------------------------------------------------------

    @property
    def erase_count(self) -> int:
        """Total block erasures so far (Fig. 19a's y-axis)."""
        return self.ftl.erase_count_total

    @property
    def mean_access_time_us(self) -> float:
        """Mean service time per host op so far (Fig. 19b's y-axis)."""
        return self.counters["access_time_us"].mean

    def wear(self, endurance_cycles: int = 5000) -> WearReport:
        return wear_report(self.ftl.nand.erase_counts, endurance_cycles)

    def reset_counters(self) -> None:
        """Zero host-op counters (erase counts and mappings persist)."""
        self.counters.reset()
