"""Garbage-collection victim selection policies.

The paper's baseline is the "ideal page-based FTL" [6] which the FlashSim
distribution pairs with **greedy** victim selection (fewest valid pages =
cheapest copy-back).  Cost-benefit and random policies are provided for
the FTL ablation benches.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.flash.nand import NandArray

__all__ = [
    "VictimPolicy",
    "GreedyVictimPolicy",
    "CostBenefitVictimPolicy",
    "RandomVictimPolicy",
]


class VictimPolicy(Protocol):
    """Chooses which candidate block garbage collection should reclaim."""

    def choose(self, nand: NandArray, candidates: np.ndarray, now_us: float) -> int:
        """Return the victim block number from ``candidates`` (non-empty)."""
        ...


class GreedyVictimPolicy:
    """Pick the candidate with the fewest valid pages (minimum copy cost)."""

    def choose(self, nand: NandArray, candidates: np.ndarray, now_us: float) -> int:
        if candidates.size == 0:
            raise ValueError("no GC candidates")
        idx = int(np.argmin(nand.valid_counts[candidates]))
        return int(candidates[idx])


class CostBenefitVictimPolicy:
    """Classic cost-benefit cleaning (Rosenblum & Ousterhout / eNVy).

    Score = (1 - u) * age / (1 + u) where u is block utilisation and age is
    the time since the block was last programmed.  Balances copy cost
    against the likelihood that remaining valid data is cold.
    """

    def __init__(self) -> None:
        self._last_program_us: dict[int, float] = {}

    def note_program(self, block: int, now_us: float) -> None:
        """Record that ``block`` received a program at ``now_us``."""
        self._last_program_us[block] = now_us

    def choose(self, nand: NandArray, candidates: np.ndarray, now_us: float) -> int:
        if candidates.size == 0:
            raise ValueError("no GC candidates")
        ppb = nand.config.pages_per_block
        best_block = int(candidates[0])
        best_score = -1.0
        for block in candidates:
            block = int(block)
            u = nand.valid_counts[block] / ppb
            age = max(0.0, now_us - self._last_program_us.get(block, 0.0))
            score = (1.0 - u) * (1.0 + age) / (1.0 + u)
            if score > best_score:
                best_score = score
                best_block = block
        return best_block


class RandomVictimPolicy:
    """Uniform random victim — a deliberately weak baseline for ablations."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def choose(self, nand: NandArray, candidates: np.ndarray, now_us: float) -> int:
        if candidates.size == 0:
            raise ValueError("no GC candidates")
        return int(self._rng.choice(candidates))
