"""Static wear leveling.

Greedy GC alone never erases blocks holding cold data, so a workload with
a hot subset (exactly what a cache produces) concentrates erasures on a
few blocks and kills them early — the lifetime concern of Section II.B.
:class:`WearLevelingFTL` adds classic *static wear leveling* on top of
the page-mapping FTL: when the erase-count spread exceeds a threshold,
the coldest data block is migrated so its barely-worn block re-enters the
write rotation.
"""

from __future__ import annotations

import numpy as np

from repro.flash.constants import FlashConfig
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.gc import VictimPolicy

__all__ = ["WearLevelingFTL"]


class WearLevelingFTL(PageMappingFTL):
    """Page-mapping FTL with threshold-triggered static wear leveling.

    Parameters
    ----------
    wear_delta_threshold:
        Migrate when ``max(erase) - min(erase among data blocks)`` exceeds
        this value.  Smaller = more even wear, more migration overhead.
    check_interval:
        Host writes between imbalance checks (checks scan per-block
        arrays, so they are cheap but not free).
    """

    def __init__(
        self,
        config: FlashConfig,
        victim_policy: VictimPolicy | None = None,
        wear_delta_threshold: int = 8,
        check_interval: int = 64,
    ) -> None:
        super().__init__(config, victim_policy)
        if wear_delta_threshold < 1:
            raise ValueError("wear_delta_threshold must be >= 1")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.wear_delta_threshold = wear_delta_threshold
        self.check_interval = check_interval
        self._writes_since_check = 0
        self.migrations = 0

    def write(self, lpn: int) -> float:
        latency = super().write(lpn)
        self._writes_since_check += 1
        if self._writes_since_check >= self.check_interval:
            self._writes_since_check = 0
            latency += self._maybe_level()
        return latency

    def write_span(self, lpn_start: int, count: int) -> float:
        latency = super().write_span(lpn_start, count)
        self._writes_since_check += count
        if self._writes_since_check >= self.check_interval:
            self._writes_since_check = 0
            latency += self._maybe_level()
        return latency

    def _maybe_level(self) -> float:
        """Migrate the coldest data block if wear spread is excessive."""
        if self.free_block_count < 1:
            return 0.0  # migration needs copy headroom; let GC run first
        counts = self.nand.erase_counts
        # Cold candidates: blocks holding data (valid pages) that are not
        # the active block.
        data_mask = self.nand.valid_counts > 0
        data_mask[self._active_block] = False
        if not data_mask.any():
            return 0.0
        data_blocks = np.nonzero(data_mask)[0]
        coldest = int(data_blocks[np.argmin(counts[data_blocks])])
        if int(counts.max()) - int(counts[coldest]) <= self.wear_delta_threshold:
            return 0.0
        # Relocate the cold data; the freed block rejoins the pool and
        # will absorb hot writes.
        latency = self._collect(coldest)
        self.migrations += 1
        self.stats.extra["wl_migrations"] = self.migrations
        return latency
