"""Flash geometry and timing configuration.

Defaults follow the paper's Table III (simulated SSD): page-mapping FTL,
2 KB pages, 128 KB blocks (64 pages), page read 32.725 us, page write
101.475 us, block erase 1.5 ms.  Section VI additionally quotes the
rounder 20/250 us figures used in the analytic discussion; both presets
are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FlashConfig", "SECTOR_BYTES"]

SECTOR_BYTES = 512
"""Logical sector size used by the SSD's block-device front-end."""


@dataclass(frozen=True)
class FlashConfig:
    """Geometry, timing and provisioning of a simulated SSD.

    Parameters
    ----------
    page_bytes:
        NAND page size.  The paper uses 2 KB.
    pages_per_block:
        Pages per erase block.  The paper uses 64 (128 KB blocks).
    num_blocks:
        Total physical blocks, including over-provisioned ones.
    overprovision:
        Fraction of physical capacity hidden from the logical address
        space and reserved for garbage collection (0 <= x < 1).
    read_us / write_us / erase_us:
        Service time of one page read / one page program / one block erase.
    channels:
        Independent flash channels striping large host transfers.  A span
        of N pages completes in ceil(N / channels) page times, matching
        the multi-channel controllers of the paper's Intel SSD 320 class.
        Single-page operations and GC copy-back stay serial.
    planes_per_channel:
        NAND planes per channel.  Striping (``channels``) models how one
        large transfer is split; ``channels * planes_per_channel`` is the
        number of *independent host requests* the device can service at
        once — the lane count the discrete-event kernel uses for the
        device's service queue.
    gc_free_block_threshold:
        Garbage collection starts when the number of free blocks drops to
        this value.  Must be >= 1 so a copy destination always exists.
    """

    page_bytes: int = 2048
    pages_per_block: int = 64
    num_blocks: int = 1024
    overprovision: float = 0.07
    read_us: float = 32.725
    write_us: float = 101.475
    erase_us: float = 1500.0
    channels: int = 4
    planes_per_channel: int = 1
    gc_free_block_threshold: int = 2
    name: str = field(default="table3", compare=False)

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes % SECTOR_BYTES:
            raise ValueError(f"page_bytes must be a positive multiple of {SECTOR_BYTES}")
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.num_blocks <= self.gc_free_block_threshold:
            raise ValueError("num_blocks must exceed gc_free_block_threshold")
        if not 0.0 <= self.overprovision < 1.0:
            raise ValueError(f"overprovision must be in [0, 1): {self.overprovision}")
        if min(self.read_us, self.write_us, self.erase_us) < 0:
            raise ValueError("latencies must be non-negative")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.planes_per_channel < 1:
            raise ValueError("planes_per_channel must be >= 1")
        if self.gc_free_block_threshold < 1:
            raise ValueError("gc_free_block_threshold must be >= 1")

    # -- derived geometry -------------------------------------------------

    @property
    def block_bytes(self) -> int:
        """Erase-block size in bytes (128 KB with the defaults)."""
        return self.page_bytes * self.pages_per_block

    @property
    def total_pages(self) -> int:
        """Total physical pages."""
        return self.num_blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        """Raw physical capacity in bytes."""
        return self.total_pages * self.page_bytes

    @property
    def logical_pages(self) -> int:
        """Number of logical pages exposed after over-provisioning."""
        usable_blocks = int(self.num_blocks * (1.0 - self.overprovision))
        return max(1, usable_blocks) * self.pages_per_block

    @property
    def logical_bytes(self) -> int:
        """Logical (user-visible) capacity in bytes."""
        return self.logical_pages * self.page_bytes

    @property
    def sectors_per_page(self) -> int:
        return self.page_bytes // SECTOR_BYTES

    @property
    def logical_sectors(self) -> int:
        return self.logical_pages * self.sectors_per_page

    # -- presets -----------------------------------------------------------

    @classmethod
    def table3(cls, num_blocks: int = 1024, **overrides) -> "FlashConfig":
        """The paper's Table III simulation parameters."""
        return cls(num_blocks=num_blocks, name="table3", **overrides)

    @classmethod
    def section6(cls, num_blocks: int = 1024, **overrides) -> "FlashConfig":
        """The round 20/250 us figures quoted in Section VI."""
        return cls(
            num_blocks=num_blocks,
            read_us=20.0,
            write_us=250.0,
            erase_us=1500.0,
            name="section6",
            **overrides,
        )
