"""Wear and lifetime reporting for simulated SSDs.

The paper argues (citing Griffin [3]) that the combination of a stressful
workload and limited erase cycles can cut SSD lifetime to under a year, and
evaluates its policies by the block-erase count they save (Fig. 19a).  This
module turns raw per-block erase counters into the numbers those arguments
need: totals, wear-levelling skew and a projected lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WearReport", "wear_report"]

#: Typical MLC endurance of the paper's era (Intel SSD 320 class).
DEFAULT_ENDURANCE_CYCLES = 5000


@dataclass(frozen=True)
class WearReport:
    """Summary statistics over per-block erase counts."""

    total_erases: int
    max_erases: int
    min_erases: int
    mean_erases: float
    std_erases: float
    #: max/mean — 1.0 is perfectly level wear; large values mean hot blocks.
    skew: float
    #: fraction of rated endurance consumed by the most-worn block.
    lifetime_consumed: float

    def remaining_lifetime_days(self, elapsed_days: float) -> float:
        """Project days of life left, assuming the observed wear rate continues."""
        if elapsed_days <= 0:
            raise ValueError("elapsed_days must be positive")
        if self.lifetime_consumed <= 0:
            return float("inf")
        rate_per_day = self.lifetime_consumed / elapsed_days
        return (1.0 - self.lifetime_consumed) / rate_per_day


def wear_report(
    erase_counts: np.ndarray,
    endurance_cycles: int = DEFAULT_ENDURANCE_CYCLES,
) -> WearReport:
    """Build a :class:`WearReport` from an array of per-block erase counts."""
    counts = np.asarray(erase_counts, dtype=np.int64)
    if counts.size == 0:
        raise ValueError("erase_counts must be non-empty")
    if endurance_cycles <= 0:
        raise ValueError("endurance_cycles must be positive")
    mean = float(counts.mean())
    max_c = int(counts.max())
    return WearReport(
        total_erases=int(counts.sum()),
        max_erases=max_c,
        min_erases=int(counts.min()),
        mean_erases=mean,
        std_erases=float(counts.std()),
        skew=(max_c / mean) if mean > 0 else 1.0,
        lifetime_consumed=min(1.0, max_c / endurance_cycles),
    )
