"""FAST — a fully-associative log-buffer hybrid FTL [8][9].

Data blocks use block-level mapping; a small pool of log blocks absorbs
overwrites with page-level mapping.  When the log pool is exhausted the
oldest log block is reclaimed by merging.  Two merge flavours are modelled:

* **switch merge** — the log block holds all pages of one logical block in
  offset order, so it simply *becomes* the data block (one erase, zero
  copies).  This is the cheap path that sequential, block-aligned writes
  hit — the mechanism the paper's placement policy is designed to exploit.
* **full merge** — valid pages of every logical block touched by the log
  block are gathered into fresh blocks (expensive; random small writes).
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from repro._hot import HOT
from repro.flash.constants import FlashConfig
from repro.flash.ftl_base import FTL
from repro.flash.gc import VictimPolicy
from repro.flash.nand import PageState

__all__ = ["FastFTL"]

_UNMAPPED = -1


class FastFTL(FTL):
    """Fully-associative sector translation (simplified FAST)."""

    def __init__(
        self,
        config: FlashConfig,
        victim_policy: VictimPolicy | None = None,
        num_log_blocks: int | None = None,
    ) -> None:
        super().__init__(config, victim_policy)
        ppb = config.pages_per_block
        self.num_lblocks = self.num_lpns // ppb
        spare = config.num_blocks - self.num_lblocks
        if spare < 3:
            raise ValueError(
                "FastFTL needs at least 3 spare blocks beyond logical capacity "
                f"(have {spare}); increase overprovision or num_blocks"
            )
        if num_log_blocks is None:
            num_log_blocks = max(2, spare - 2)
        if num_log_blocks < 1 or num_log_blocks > spare - 1:
            raise ValueError(f"num_log_blocks must be in [1, {spare - 1}]")
        self.num_log_blocks = num_log_blocks
        self._l2b = np.full(self.num_lblocks, _UNMAPPED, dtype=np.int64)
        # lpn -> ppn of the live copy in the log area (page-level map)
        self._log_map: OrderedDict[int, int] = OrderedDict()
        # log blocks in fill order; the leftmost is the next merge victim
        self._log_blocks: deque[int] = deque()
        self._active_log = self._take_free_block()
        self._log_blocks.append(self._active_log)
        self._mapped = 0

    # -- host operations ----------------------------------------------------

    def read(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        ppn = self._log_map.get(lpn)
        if ppn is None:
            ppb = self.config.pages_per_block
            lbn, off = divmod(lpn, ppb)
            pb = int(self._l2b[lbn])
            if pb != _UNMAPPED:
                data_ppn = pb * ppb + off
                if self.nand.state(data_ppn) == PageState.VALID:
                    self.nand.read_page(data_ppn)
        else:
            self.nand.read_page(ppn)
        self.stats.host_page_reads += 1
        return self.config.read_us

    def write(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        latency = 0.0
        ppb = self.config.pages_per_block
        lbn, off = divmod(lpn, ppb)

        pb = int(self._l2b[lbn])
        if pb == _UNMAPPED and off == 0 and lpn not in self._log_map:
            # First write of a logical block starting at offset 0: open a
            # data block directly (the common bulk-load path).
            pb = self._take_free_block()
            self._l2b[lbn] = pb
            self.nand.program_page_at(pb, off)
            self._mapped += 1
            self.stats.host_page_writes += 1
            return latency + self.config.write_us
        if pb != _UNMAPPED and self.nand.state(pb * ppb + off) == PageState.FREE:
            if self._invalidate_existing(lpn):  # stale copy in the log area
                self._mapped -= 1
            self.nand.program_page_at(pb, off)
            self._mapped += 1
            self.stats.host_page_writes += 1
            return latency + self.config.write_us

        # Otherwise append to the log area.  Space is secured *before* the
        # old copy is invalidated: merging first keeps a fully-sequential
        # victim log block switchable (its pages are all still valid).
        if self.nand.free_pages_in(self._active_log) == 0:
            latency += self._advance_log_block()
        if self._invalidate_existing(lpn):
            self._mapped -= 1
        ppn = self.nand.program_page(self._active_log)
        self._log_map[lpn] = ppn
        self._mapped += 1
        self.stats.host_page_writes += 1
        latency += self.config.write_us
        return latency

    def trim(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        if self._invalidate_existing(lpn):
            self._mapped -= 1
            self.stats.trimmed_pages += 1
        return 0.0

    def mapped_lpn_count(self) -> int:
        return self._mapped

    # -- internals ------------------------------------------------------------

    def _invalidate_existing(self, lpn: int) -> bool:
        """Invalidate any live copy of ``lpn``; return True if one existed."""
        ppn = self._log_map.pop(lpn, None)
        if ppn is not None:
            self.nand.invalidate_page(ppn)
            return True
        ppb = self.config.pages_per_block
        lbn, off = divmod(lpn, ppb)
        pb = int(self._l2b[lbn])
        if pb != _UNMAPPED:
            data_ppn = pb * ppb + off
            if self.nand.state(data_ppn) == PageState.VALID:
                self.nand.invalidate_page(data_ppn)
                return True
        return False

    def _advance_log_block(self) -> float:
        """Open a new active log block, merging the oldest if the pool is full."""
        latency = 0.0
        if len(self._log_blocks) >= self.num_log_blocks:
            latency += self._merge_oldest_log()
        self._active_log = self._take_free_block()
        self._log_blocks.append(self._active_log)
        return latency

    def _log_block_is_switchable(self, log_block: int) -> int:
        """Return the lbn if ``log_block`` can switch-merge, else -1.

        Switchable means: every page is VALID and page i holds offset i of
        one single logical block.
        """
        ppb = self.config.pages_per_block
        lo = log_block * ppb
        reverse: dict[int, int] = {ppn: lpn for lpn, ppn in self._log_map.items()
                                   if lo <= ppn < lo + ppb}
        if len(reverse) != ppb:
            return -1
        lbn = reverse[lo] // ppb
        for i in range(ppb):
            lpn = reverse.get(lo + i)
            if lpn is None or lpn != lbn * ppb + i:
                return -1
        return lbn

    def _merge_oldest_log(self) -> float:
        """Reclaim the oldest log block via switch or full merge."""
        victim = self._log_blocks.popleft()
        ppb = self.config.pages_per_block
        latency = 0.0

        switch_lbn = self._log_block_is_switchable(victim)
        if switch_lbn >= 0:
            # Switch merge: the log block becomes the data block.
            old_pb = int(self._l2b[switch_lbn])
            for i in range(ppb):
                del self._log_map[switch_lbn * ppb + i]
            self._l2b[switch_lbn] = victim
            if old_pb != _UNMAPPED:
                latency += self._discard_block(old_pb)
            self.stats.extra["switch_merges"] = self.stats.extra.get("switch_merges", 0) + 1
            return latency

        # Full merge: rebuild every logical block that has live pages in the victim.
        lo = victim * ppb
        touched = sorted({lpn // ppb for lpn, ppn in self._log_map.items()
                          if lo <= ppn < lo + ppb})
        for lbn in touched:
            latency += self._full_merge_lbn(lbn)
        latency += self._discard_block(victim)
        return latency

    def _full_merge_lbn(self, lbn: int) -> float:
        """Gather the live pages of ``lbn`` from log + data into a fresh block."""
        ppb = self.config.pages_per_block
        latency = 0.0
        new_pb = self._take_free_block()
        old_pb = int(self._l2b[lbn])
        for off in range(ppb):
            lpn = lbn * ppb + off
            src = self._log_map.get(lpn)
            if src is None and old_pb != _UNMAPPED:
                data_ppn = old_pb * ppb + off
                if self.nand.state(data_ppn) == PageState.VALID:
                    src = data_ppn
            if src is None:
                continue
            self.nand.read_page(src)
            self.stats.gc_page_reads += 1
            latency += self.config.read_us
            self.nand.invalidate_page(src)
            self._log_map.pop(lpn, None)
            self.nand.program_page_at(new_pb, off)
            self.stats.gc_page_writes += 1
            latency += self.config.write_us
        if old_pb != _UNMAPPED:
            latency += self._discard_block(old_pb)
        self._l2b[lbn] = new_pb
        self.stats.full_merges += 1
        return latency

    def _discard_block(self, block: int) -> float:
        """Invalidate leftovers, erase ``block`` and return it to the pool."""
        for ppn in self.nand.valid_ppns_in(block):
            # Any page still VALID here is stale (its lpn lives elsewhere).
            self.nand.invalidate_page(ppn)
        self.nand.erase_block(block)
        self._release_block(block)
        self.stats.block_erases += 1
        return self.config.erase_us
