"""DFTL — demand-based page-level mapping [10].

Page-level mapping whose full table lives *in flash* as translation pages;
only a small Cached Mapping Table (CMT) is held in controller SRAM.  CMT
misses cost a translation-page read; evicting a dirty CMT entry costs a
translation-page read-modify-write.  Garbage collection relocates data and
translation pages alike.

Simulator note: a shadow in-memory l2p array keeps the *semantics* exact,
while translation I/O is charged according to the CMT/GTD protocol — the
standard approach for trace-driven DFTL studies.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro._hot import HOT
from repro.flash.constants import FlashConfig
from repro.flash.ftl_base import FTL
from repro.flash.gc import VictimPolicy
from repro.flash.nand import PageState

__all__ = ["DFTL"]

_UNMAPPED = -1


class DFTL(FTL):
    """Demand-based FTL with a cached mapping table.

    Parameters
    ----------
    cmt_entries:
        Capacity of the SRAM-resident cached mapping table, in entries.
    """

    #: bytes per mapping entry in a translation page (4 B lpn + 4 B ppn)
    ENTRY_BYTES = 8

    def __init__(
        self,
        config: FlashConfig,
        victim_policy: VictimPolicy | None = None,
        cmt_entries: int = 4096,
    ) -> None:
        super().__init__(config, victim_policy)
        if cmt_entries < 1:
            raise ValueError("cmt_entries must be >= 1")
        self.cmt_entries = cmt_entries
        self.entries_per_tpage = config.page_bytes // self.ENTRY_BYTES
        self.num_tpages = -(-self.num_lpns // self.entries_per_tpage)
        # Shadow of the full on-flash mapping (semantics source of truth).
        self._l2p = np.full(self.num_lpns, _UNMAPPED, dtype=np.int64)
        # p2l: data pages store lpn >= 0; translation pages store -(tvpn + 2).
        self._p2l = np.full(config.total_pages, _UNMAPPED, dtype=np.int64)
        # Global Translation Directory: tvpn -> ppn of its translation page.
        self._gtd: dict[int, int] = {}
        # Cached Mapping Table: lpn -> dirty flag (ppn read from shadow).
        self._cmt: OrderedDict[int, bool] = OrderedDict()
        self._active_block = self._take_free_block()
        self._mapped = 0
        self._in_gc = False  # suppresses recursive GC from translation flushes

    # -- host operations -----------------------------------------------------

    def read(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        latency = self._ensure_cmt(lpn)
        ppn = int(self._l2p[lpn])
        if ppn != _UNMAPPED:
            self.nand.read_page(ppn)
        self.stats.host_page_reads += 1
        return latency + self.config.read_us

    def write(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        latency = self._ensure_cmt(lpn)
        old = int(self._l2p[lpn])
        if old != _UNMAPPED:
            self.nand.invalidate_page(old)
            self._p2l[old] = _UNMAPPED
        else:
            self._mapped += 1
        latency += self._ensure_space()
        ppn = self._program_active(lpn)
        self._l2p[lpn] = ppn
        self._cmt[lpn] = True  # dirty
        self._cmt.move_to_end(lpn)
        self.stats.host_page_writes += 1
        return latency + self.config.write_us

    def trim(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        ppn = int(self._l2p[lpn])
        if ppn == _UNMAPPED:
            return 0.0
        latency = self._ensure_cmt(lpn)
        self.nand.invalidate_page(ppn)
        self._p2l[ppn] = _UNMAPPED
        self._l2p[lpn] = _UNMAPPED
        self._cmt[lpn] = True
        self._mapped -= 1
        self.stats.trimmed_pages += 1
        return latency

    def mapped_lpn_count(self) -> int:
        return self._mapped

    @property
    def cmt_size(self) -> int:
        return len(self._cmt)

    # -- CMT / translation-page protocol ----------------------------------------

    def _tvpn_of(self, lpn: int) -> int:
        return lpn // self.entries_per_tpage

    def _ensure_cmt(self, lpn: int) -> float:
        """Bring ``lpn``'s mapping into the CMT; return translation I/O time."""
        if lpn in self._cmt:
            self._cmt.move_to_end(lpn)
            return 0.0
        latency = 0.0
        if len(self._cmt) >= self.cmt_entries:
            latency += self._evict_cmt_entry()
        # Fetch the entry from its translation page (if one exists yet).
        tvpn = self._tvpn_of(lpn)
        if tvpn in self._gtd:
            self.nand.read_page(self._gtd[tvpn])
            self.stats.translation_page_reads += 1
            latency += self.config.read_us
        self._cmt[lpn] = False  # clean
        return latency

    def _evict_cmt_entry(self) -> float:
        """Evict the LRU CMT entry, flushing its translation page if dirty."""
        victim_lpn, dirty = self._cmt.popitem(last=False)
        if not dirty:
            return 0.0
        return self._flush_translation_page(self._tvpn_of(victim_lpn))

    def _flush_translation_page(self, tvpn: int) -> float:
        """Read-modify-write translation page ``tvpn``.

        Also clears the dirty bit of every other cached entry belonging to
        the same translation page (batch update — DFTL's key optimisation).
        """
        latency = 0.0
        old = self._gtd.get(tvpn)
        if old is not None:
            self.nand.read_page(old)
            self.stats.translation_page_reads += 1
            latency += self.config.read_us
            self.nand.invalidate_page(old)
            self._p2l[old] = _UNMAPPED
        if not self._in_gc:
            latency += self._ensure_space()
        ppn = self._program_active(-(tvpn + 2))
        self._gtd[tvpn] = ppn
        self.stats.translation_page_writes += 1
        latency += self.config.write_us
        lo = tvpn * self.entries_per_tpage
        hi = lo + self.entries_per_tpage
        for lpn in list(self._cmt):
            if lo <= lpn < hi:
                self._cmt[lpn] = False
        return latency

    # -- space management ------------------------------------------------------

    def _program_active(self, tag: int) -> int:
        """Program the next active page; ``tag`` is the p2l encoding."""
        if self.nand.free_pages_in(self._active_block) == 0:
            self._active_block = self._take_free_block()
        ppn = self.nand.program_page(self._active_block)
        self._p2l[ppn] = tag
        return ppn

    def _ensure_space(self) -> float:
        latency = 0.0
        guard = self.config.num_blocks * 2
        while self.free_block_count < self.config.gc_free_block_threshold:
            guard -= 1
            if guard < 0:  # pragma: no cover
                raise RuntimeError("DFTL GC livelock")
            candidates = self._gc_candidates(exclude={self._active_block})
            if candidates.size == 0:
                break
            victim = self._choose_victim(candidates, origin="foreground")
            latency += self._collect(victim)
        return latency

    def _collect(self, victim: int) -> float:
        latency = 0.0
        self._in_gc = True
        # Translation updates for relocated data pages are batched per
        # translation page (DFTL's lazy-copying optimisation): one RMW per
        # affected tvpn, not one per page.
        touched_tvpns: set[int] = set()
        for ppn in self.nand.valid_ppns_in(victim):
            tag = int(self._p2l[ppn])
            self.nand.read_page(ppn)
            self.stats.gc_page_reads += 1
            latency += self.config.read_us
            self.nand.invalidate_page(ppn)
            self._p2l[ppn] = _UNMAPPED
            new_ppn = self._program_active(tag)
            self.stats.gc_page_writes += 1
            latency += self.config.write_us
            if tag <= -2:
                # Relocated a translation page: SRAM-resident GTD update.
                self._gtd[-(tag + 2)] = new_ppn
            else:
                self._l2p[tag] = new_ppn
                if tag in self._cmt:
                    self._cmt[tag] = True
                else:
                    touched_tvpns.add(self._tvpn_of(tag))
        self.nand.erase_block(victim)
        self._release_block(victim)
        self.stats.block_erases += 1
        latency += self.config.erase_us
        for tvpn in touched_tvpns:
            latency += self._flush_translation_page(tvpn)
        self._in_gc = False
        return latency
