"""NAND-flash SSD simulator.

This subpackage replaces the paper's FlashSim/DiskSim (PSU) testbed.  It
models a NAND array with erase-before-write semantics and per-block erase
counters (:mod:`repro.flash.nand`), several flash translation layers
(page-mapping — the paper's baseline FTL — plus block-mapping, FAST and
DFTL for the related-work ablations), greedy/cost-benefit garbage
collection, and a sector-addressed SSD device front-end with the latency
parameters of the paper's Table III.
"""

from repro.flash.constants import FlashConfig
from repro.flash.nand import NandArray, PageState
from repro.flash.ftl_base import FTL, FtlStats
from repro.flash.ftl_page import PageMappingFTL
from repro.flash.ftl_block import BlockMappingFTL
from repro.flash.ftl_fast import FastFTL
from repro.flash.ftl_dftl import DFTL
from repro.flash.gc import GreedyVictimPolicy, CostBenefitVictimPolicy, RandomVictimPolicy
from repro.flash.ssd import SimulatedSSD
from repro.flash.wear import WearReport, wear_report
from repro.flash.wearlevel import WearLevelingFTL

__all__ = [
    "FlashConfig",
    "NandArray",
    "PageState",
    "FTL",
    "FtlStats",
    "PageMappingFTL",
    "BlockMappingFTL",
    "FastFTL",
    "DFTL",
    "GreedyVictimPolicy",
    "CostBenefitVictimPolicy",
    "RandomVictimPolicy",
    "SimulatedSSD",
    "WearReport",
    "wear_report",
    "WearLevelingFTL",
]
