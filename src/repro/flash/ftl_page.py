"""Page-mapping FTL — the paper's baseline ("ideal page-based FTL" [6]).

Every logical page maps independently to any physical page.  Writes append
to an active block; overwrites invalidate the old physical page.  When the
free-block pool drains to the configured threshold, greedy garbage
collection relocates the valid pages of the victim block and erases it.

The mapping tables are flat numpy arrays (l2p and p2l), so lookups are O(1)
and the memory layout matches what a real controller's SRAM table would be.
"""

from __future__ import annotations

import numpy as np

from repro._hot import HOT
from repro.flash.constants import FlashConfig
from repro.flash.ftl_base import FTL
from repro.flash.gc import CostBenefitVictimPolicy, VictimPolicy

__all__ = ["PageMappingFTL"]

_UNMAPPED = -1


class PageMappingFTL(FTL):
    """Page-level mapping with greedy (or pluggable) garbage collection."""

    def __init__(
        self,
        config: FlashConfig,
        victim_policy: VictimPolicy | None = None,
    ) -> None:
        super().__init__(config, victim_policy)
        self._l2p = np.full(self.num_lpns, _UNMAPPED, dtype=np.int64)
        self._p2l = np.full(config.total_pages, _UNMAPPED, dtype=np.int64)
        self._active_block = self._take_free_block()
        self._mapped = 0
        # OOB (out-of-band) metadata, as a real controller writes next to
        # each page: the page's lpn and a monotonically increasing write
        # sequence number.  Unlike _p2l, OOB survives logical invalidation
        # (only an erase clears it) — it is what power-loss recovery scans.
        self._oob_lpn = np.full(config.total_pages, _UNMAPPED, dtype=np.int64)
        self._oob_seq = np.zeros(config.total_pages, dtype=np.int64)
        self._write_seq = 0
        # TRIM journal (real FTLs persist trims in metadata blocks; we
        # model the journal's content, charging nothing extra).
        self._trim_journal: dict[int, int] = {}

    # -- host operations ---------------------------------------------------

    def read(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        ppn = self._l2p[lpn]
        if ppn == _UNMAPPED:
            # Reading never-written space: real SSDs return zeros without
            # touching NAND; charge a controller-only cost of one page read
            # so callers still see a bounded, non-zero service time.
            self.stats.host_page_reads += 1
            return self.config.read_us
        self.nand.read_page(int(ppn))
        self.stats.host_page_reads += 1
        return self.config.read_us

    def write(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        latency = 0.0
        old = self._l2p[lpn]
        if old != _UNMAPPED:
            self.nand.invalidate_page(int(old))
            self._p2l[old] = _UNMAPPED
        else:
            self._mapped += 1
        latency += self._ensure_space()
        ppn = self._program_active(lpn)
        self._l2p[lpn] = ppn
        self.stats.host_page_writes += 1
        latency += self.config.write_us
        return latency

    def trim(self, lpn: int) -> float:
        self._check_lpn(lpn)
        HOT.ftl_map_lookups += 1
        ppn = self._l2p[lpn]
        if ppn == _UNMAPPED:
            return 0.0
        self.nand.invalidate_page(int(ppn))
        self._p2l[ppn] = _UNMAPPED
        self._l2p[lpn] = _UNMAPPED
        self._mapped -= 1
        self.stats.trimmed_pages += 1
        self._write_seq += 1
        self._trim_journal[lpn] = self._write_seq
        return 0.0  # metadata-only; real TRIM cost is deferred to GC savings

    def mapped_lpn_count(self) -> int:
        return self._mapped

    # -- vectorised span operations (hot path for large cache-block I/O) ----

    def read_span(self, lpn_start: int, count: int) -> float:
        """Read ``count`` consecutive logical pages; returns service time."""
        if count <= 0:
            raise ValueError("count must be positive")
        self._check_lpn(lpn_start)
        self._check_lpn(lpn_start + count - 1)
        HOT.ftl_map_lookups += count
        ppns = self._l2p[lpn_start:lpn_start + count]
        self.nand.read_pages(ppns[ppns != _UNMAPPED])
        self.stats.host_page_reads += count
        # Multi-channel striping: N pages finish in ceil(N/C) page times.
        return -(-count // self.config.channels) * self.config.read_us

    def write_span(self, lpn_start: int, count: int) -> float:
        """Write ``count`` consecutive logical pages; returns service time.

        Equivalent to ``count`` calls of :meth:`write` but with the
        invalidation, programming and mapping updates done as array
        operations; GC runs between block-sized slices exactly as it
        would between individual writes.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        self._check_lpn(lpn_start)
        self._check_lpn(lpn_start + count - 1)
        HOT.ftl_map_lookups += count
        old = self._l2p[lpn_start:lpn_start + count]
        p0 = int(old[0])
        if p0 != _UNMAPPED and int(old[-1]) - p0 == count - 1 and (
            count == 1 or np.array_equal(old, np.arange(p0, p0 + count))
        ):
            # Fully-mapped contiguous span (the shape every whole-block
            # placement produces): the reverse-map clear is a slice store.
            self.nand.invalidate_run(p0, count)
            self._p2l[p0:p0 + count] = _UNMAPPED
        else:
            live = old[old != _UNMAPPED]
            if live.size:
                self.nand.invalidate_pages(live)
                self._p2l[live] = _UNMAPPED
            self._mapped += int(count - live.size)

        latency = -(-count // self.config.channels) * self.config.write_us
        done = 0
        while done < count:
            latency += self._ensure_space()
            room = self.nand.free_pages_in(self._active_block)
            if room == 0:
                self._active_block = self._take_free_block()
                room = self.config.pages_per_block
            take = min(room, count - done)
            # Programmed runs are contiguous, so every mapping update is a
            # slice assignment rather than fancy indexing.
            p0 = self.nand.program_run_start(self._active_block, take)
            s = lpn_start + done
            self._p2l[p0:p0 + take] = np.arange(s, s + take, dtype=np.int64)
            self._l2p[s:s + take] = np.arange(p0, p0 + take, dtype=np.int64)
            self._oob_lpn[p0:p0 + take] = self._p2l[p0:p0 + take]
            self._oob_seq[p0:p0 + take] = np.arange(
                self._write_seq + 1, self._write_seq + 1 + take
            )
            self._write_seq += take
            if isinstance(self.victim_policy, CostBenefitVictimPolicy):
                self.victim_policy.note_program(self._active_block, self._now_us)
            done += take
        self.stats.host_page_writes += count
        return latency

    def trim_span(self, lpn_start: int, count: int) -> float:
        """TRIM ``count`` consecutive logical pages."""
        if count <= 0:
            return 0.0
        self._check_lpn(lpn_start)
        self._check_lpn(lpn_start + count - 1)
        HOT.ftl_map_lookups += count
        old = self._l2p[lpn_start:lpn_start + count]
        p0 = int(old[0])
        if p0 != _UNMAPPED and int(old[-1]) - p0 == count - 1 and (
            count == 1 or np.array_equal(old, np.arange(p0, p0 + count))
        ):
            # Fully-mapped contiguous span: slice stores on both mapping
            # directions, journal keys enumerated without a mask scan.
            self.nand.invalidate_run(p0, count)
            self._p2l[p0:p0 + count] = _UNMAPPED
            old[:] = _UNMAPPED  # writes through the l2p view
            self._mapped -= count
            self.stats.trimmed_pages += count
            self._write_seq += 1
            self._trim_journal.update(dict.fromkeys(
                range(lpn_start, lpn_start + count), self._write_seq))
            return 0.0
        live_mask = old != _UNMAPPED
        live = old[live_mask]
        if live.size:
            self.nand.invalidate_pages(live)
            self._p2l[live] = _UNMAPPED
            old[live_mask] = _UNMAPPED  # writes through the l2p view
            self._mapped -= int(live.size)
            self.stats.trimmed_pages += int(live.size)
            self._write_seq += 1
            journaled = (np.nonzero(live_mask)[0] + lpn_start).tolist()
            self._trim_journal.update(
                dict.fromkeys(journaled, self._write_seq))
        return 0.0

    def ppn_of(self, lpn: int) -> int:
        """Current physical page of ``lpn`` (-1 when unmapped). For tests."""
        self._check_lpn(lpn)
        return int(self._l2p[lpn])

    # -- internals -----------------------------------------------------------

    def _program_active(self, lpn: int) -> int:
        """Program the next page of the active block for ``lpn``."""
        if self.nand.free_pages_in(self._active_block) == 0:
            self._active_block = self._take_free_block()
        ppn = self.nand.program_page(self._active_block)
        self._p2l[ppn] = lpn
        self._write_seq += 1
        self._oob_lpn[ppn] = lpn
        self._oob_seq[ppn] = self._write_seq
        if isinstance(self.victim_policy, CostBenefitVictimPolicy):
            self.victim_policy.note_program(self._active_block, self._now_us)
        return ppn

    def _ensure_space(self) -> float:
        """Run GC until the free pool is above threshold; return GC time in us."""
        latency = 0.0
        guard = self.config.num_blocks * 2  # defensive bound; GC must terminate
        while (
            self.free_block_count < self.config.gc_free_block_threshold
            or (self.free_block_count == 0
                and self.nand.free_pages_in(self._active_block) == 0)
        ):
            guard -= 1
            if guard < 0:  # pragma: no cover - invariant violation
                raise RuntimeError("GC failed to reclaim space (livelock)")
            candidates = self._gc_candidates(exclude={self._active_block})
            if candidates.size == 0:
                break  # nothing reclaimable; pool is as good as it gets
            victim = self._choose_victim(candidates, origin="foreground")
            latency += self._collect(victim)
        return latency

    def _collect(self, victim: int) -> float:
        """Relocate valid pages out of ``victim`` and erase it.

        Equivalent to the per-page read/invalidate/program loop, executed
        as batch array operations: all the victim's valid pages are read
        and invalidated at once, then re-programmed in block-sized chunks
        following the same active-block/free-block allocation order the
        scalar loop would use.  Latency stays ``n*(read+write) + erase``.
        """
        latency = 0.0
        ppns = self.nand.valid_ppn_array(victim)
        n = int(ppns.size)
        if n:
            lpns = self._p2l[ppns]
            assert (lpns != _UNMAPPED).all(), "valid page without reverse mapping"
            self.nand.read_pages(ppns)
            self.stats.gc_page_reads += n
            self.nand.invalidate_pages(ppns)
            self._p2l[ppns] = _UNMAPPED
            latency += n * (self.config.read_us + self.config.write_us)
            done = 0
            while done < n:
                room = self.nand.free_pages_in(self._active_block)
                if room == 0:
                    self._active_block = self._take_free_block()
                    room = self.config.pages_per_block
                take = min(room, n - done)
                p0 = self.nand.program_run_start(self._active_block, take)
                chunk = lpns[done:done + take]
                self._p2l[p0:p0 + take] = chunk
                self._l2p[chunk] = np.arange(p0, p0 + take, dtype=np.int64)
                self._oob_lpn[p0:p0 + take] = chunk
                self._oob_seq[p0:p0 + take] = np.arange(
                    self._write_seq + 1, self._write_seq + 1 + take
                )
                self._write_seq += take
                if isinstance(self.victim_policy, CostBenefitVictimPolicy):
                    self.victim_policy.note_program(self._active_block, self._now_us)
                done += take
            self.stats.gc_page_writes += n
        self.nand.erase_block(victim)
        lo = victim * self.config.pages_per_block
        hi = lo + self.config.pages_per_block
        self._oob_lpn[lo:hi] = _UNMAPPED  # erase wipes OOB metadata too
        self._oob_seq[lo:hi] = 0
        self._release_block(victim)
        self.stats.block_erases += 1
        latency += self.config.erase_us
        return latency

    def background_collect(
        self, budget_us: float, target_free_blocks: int | None = None
    ) -> float:
        """Idle-time garbage collection (Chen et al. [5]: background ops
        vs foreground jobs).

        Reclaims blocks while the device is idle so later foreground
        writes find a stocked free pool instead of paying GC inline.
        Only blocks with invalid pages are touched; stops when the pool
        reaches ``target_free_blocks`` (default 4x the GC threshold) or
        the time budget runs out.  Returns the idle time consumed.
        """
        if budget_us < 0:
            raise ValueError("budget_us cannot be negative")
        if target_free_blocks is None:
            target_free_blocks = 4 * self.config.gc_free_block_threshold
        used = 0.0
        while used < budget_us and self.free_block_count < target_free_blocks:
            candidates = self._gc_candidates(exclude={self._active_block})
            if candidates.size == 0:
                break
            victim = self._choose_victim(candidates, origin="background")
            # Skip victims that cost more copy-work than they reclaim.
            if self.nand.invalid_count(victim) < self.config.pages_per_block // 8:
                break
            used += self._collect(victim)
        return used

    # -- power-loss recovery ---------------------------------------------------

    def recover_mapping(self) -> np.ndarray:
        """Rebuild the L2P table from OOB metadata (power-loss recovery).

        A controller coming up after sudden power loss scans every
        programmed page's OOB area: for each lpn, the copy with the
        highest write sequence number is current — unless the TRIM
        journal holds a later sequence for that lpn.  Returns the rebuilt
        l2p array without touching the live FTL state.
        """
        rebuilt = np.full(self.num_lpns, _UNMAPPED, dtype=np.int64)
        best_seq = np.zeros(self.num_lpns, dtype=np.int64)
        programmed = np.nonzero(self._oob_lpn != _UNMAPPED)[0]
        for ppn in programmed.tolist():
            lpn = int(self._oob_lpn[ppn])
            seq = int(self._oob_seq[ppn])
            if seq > best_seq[lpn]:
                best_seq[lpn] = seq
                rebuilt[lpn] = ppn
        for lpn, trim_seq in self._trim_journal.items():
            if rebuilt[lpn] != _UNMAPPED and trim_seq > best_seq[lpn]:
                rebuilt[lpn] = _UNMAPPED
        return rebuilt

    def verify_recovery(self) -> bool:
        """True when OOB-scan recovery reproduces the live mapping."""
        return bool(np.array_equal(self.recover_mapping(), self._l2p))
