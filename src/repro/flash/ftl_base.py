"""Flash translation layer interface and shared machinery.

An FTL maps *logical page numbers* (lpn) onto physical NAND pages and hides
erase-before-write.  All FTLs here expose the same three operations —
``read``, ``write``, ``trim`` — each returning the **service time in
microseconds**, so the SSD front-end can charge a virtual clock without
knowing which FTL is installed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.flash.constants import FlashConfig
from repro.flash.gc import GreedyVictimPolicy, VictimPolicy
from repro.flash.nand import NandArray

__all__ = ["FtlStats", "FTL"]


@dataclass
class FtlStats:
    """Operation counters split by origin (host vs background)."""

    host_page_reads: int = 0
    host_page_writes: int = 0
    gc_page_reads: int = 0
    gc_page_writes: int = 0
    block_erases: int = 0
    trimmed_pages: int = 0
    translation_page_reads: int = 0
    translation_page_writes: int = 0
    full_merges: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_page_writes(self) -> int:
        return self.host_page_writes + self.gc_page_writes + self.translation_page_writes

    @property
    def write_amplification(self) -> float:
        """Physical page writes per host page write (1.0 = no amplification)."""
        if self.host_page_writes == 0:
            return 0.0
        return self.total_page_writes / self.host_page_writes


#: Candidate scores kept per audited GC decision (the full candidate set
#: can be thousands of blocks; the trail keeps the head plus the choice).
_AUDIT_SCORE_CAP = 16


class FTL(ABC):
    """Base class: owns the NAND array, free-block pool and GC plumbing."""

    #: Optional decision audit log (repro.obs.audit), attached by the SSD
    #: front-end / storage hierarchy.  None keeps the GC path free of any
    #: observability dependency — same contract as the device tracer.
    audit = None
    #: Device name stamped into audit records (set alongside ``audit``).
    audit_device = ""

    def __init__(
        self,
        config: FlashConfig,
        victim_policy: VictimPolicy | None = None,
    ) -> None:
        self.config = config
        self.nand = NandArray(config)
        self.victim_policy = victim_policy or GreedyVictimPolicy()
        self.stats = FtlStats()
        self.num_lpns = config.logical_pages
        # Free-block pool: every block starts free.
        self._free_blocks: list[int] = list(range(config.num_blocks - 1, -1, -1))
        self._now_us = 0.0  # advanced by the SSD front-end for age-based policies

    # -- host interface ------------------------------------------------------

    @abstractmethod
    def read(self, lpn: int) -> float:
        """Read one logical page; return service time in us."""

    @abstractmethod
    def write(self, lpn: int) -> float:
        """Write one logical page; return service time in us."""

    @abstractmethod
    def trim(self, lpn: int) -> float:
        """Discard one logical page (TRIM); return service time in us."""

    def set_time(self, now_us: float) -> None:
        """Inform the FTL of current simulated time (for age-based GC)."""
        self._now_us = now_us

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.num_lpns:
            raise IndexError(f"lpn {lpn} out of range [0, {self.num_lpns})")

    # -- free-block pool -------------------------------------------------------

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    def _take_free_block(self) -> int:
        if not self._free_blocks:
            raise RuntimeError(
                "NAND out of free blocks — over-provisioning too small or GC broken"
            )
        return self._free_blocks.pop()

    def _release_block(self, block: int) -> None:
        self._free_blocks.append(block)

    def _choose_victim(self, candidates: np.ndarray, origin: str) -> int:
        """Delegate victim selection to the policy, auditing the choice.

        ``origin`` distinguishes foreground GC (inline with a host write)
        from background reclamation.
        """
        victim = self.victim_policy.choose(self.nand, candidates, self._now_us)
        audit = self.audit
        if audit is not None:
            scores = [
                [int(b), int(self.nand.valid_counts[b])]
                for b in candidates[:_AUDIT_SCORE_CAP].tolist()
            ]
            audit.record(
                "gc.victim", "gc", int(victim),
                device=self.audit_device,
                policy=type(self.victim_policy).__name__,
                origin=origin,
                candidates=int(candidates.size),
                valid_pages=int(self.nand.valid_counts[victim]),
                scores=scores,
            )
        return victim

    def _gc_candidates(self, exclude: set[int]) -> np.ndarray:
        """Fully- or partially-written blocks eligible as GC victims."""
        # Only blocks with at least one invalid page are worth reclaiming;
        # one boolean mask over the per-block count vectors replaces the
        # old np.isin scan (exclude is a handful of active blocks).
        mask = (self.nand.write_ptrs > 0) & (self.nand.invalid_counts > 0)
        for b in exclude:
            mask[b] = False
        return np.nonzero(mask)[0]

    # -- reporting ---------------------------------------------------------------

    @property
    def erase_count_total(self) -> int:
        return int(self.nand.erase_counts.sum())

    def utilization(self) -> float:
        """Fraction of logical pages currently mapped (0..1)."""
        return self.mapped_lpn_count() / self.num_lpns

    @abstractmethod
    def mapped_lpn_count(self) -> int:
        """Number of logical pages with live data."""
