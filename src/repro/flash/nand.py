"""Physical NAND array model.

Enforces the invariants FTLs must respect:

* a page can only be **programmed** when FREE (erase-before-write);
* pages within a block are programmed **sequentially** (NAND constraint);
* **erase** operates on whole blocks and increments the block's wear count.

The array tracks page states and per-block valid/invalid counts with numpy
arrays so garbage-collection victim scans stay O(num_blocks) vectorised
operations instead of Python loops.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.flash.constants import FlashConfig

__all__ = ["PageState", "NandArray"]


class PageState(IntEnum):
    """Lifecycle of a physical page: FREE -> VALID -> INVALID -> (erase) FREE."""

    FREE = 0
    VALID = 1
    INVALID = 2


# Hot-path constants: accessing an enum member as a class attribute goes
# through the EnumType metaclass __getattr__ on every lookup — measurably
# hot when NAND ops run hundreds of thousands of times per benchmark.
# The state array stores these plain ints; PageState stays the public face.
_FREE = int(PageState.FREE)
_VALID = int(PageState.VALID)
_INVALID = int(PageState.INVALID)


class NandArray:
    """A flat array of erase blocks, each holding ``pages_per_block`` pages.

    Physical page numbers (ppn) are ``block * pages_per_block + offset``.
    The array is purely a state machine — latency accounting lives in the
    FTL/SSD layers so alternative timing models can reuse it.
    """

    def __init__(self, config: FlashConfig) -> None:
        self.config = config
        n_blocks = config.num_blocks
        ppb = config.pages_per_block
        self._state = np.full(n_blocks * ppb, _FREE, dtype=np.uint8)
        # next page offset to program in each block (sequential-program rule)
        self._write_ptr = np.zeros(n_blocks, dtype=np.int32)
        self._valid_count = np.zeros(n_blocks, dtype=np.int32)
        self._invalid_count = np.zeros(n_blocks, dtype=np.int32)
        self.erase_counts = np.zeros(n_blocks, dtype=np.int64)
        self.programs = 0
        self.reads = 0
        self.erases = 0

    # -- geometry helpers --------------------------------------------------

    def block_of(self, ppn: int) -> int:
        return ppn // self.config.pages_per_block

    def offset_of(self, ppn: int) -> int:
        return ppn % self.config.pages_per_block

    def channel_of(self, block: int) -> int:
        """Flash channel serving ``block`` (blocks stripe round-robin)."""
        return block % self.config.channels

    def plane_of(self, block: int) -> int:
        """Plane within the channel serving ``block``."""
        return (block // self.config.channels) % self.config.planes_per_channel

    def _check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.config.total_pages:
            raise IndexError(f"ppn {ppn} out of range [0, {self.config.total_pages})")

    # -- state queries -----------------------------------------------------

    def state(self, ppn: int) -> PageState:
        self._check_ppn(ppn)
        return PageState(self._state[ppn])

    def valid_count(self, block: int) -> int:
        return int(self._valid_count[block])

    def invalid_count(self, block: int) -> int:
        return int(self._invalid_count[block])

    def free_pages_in(self, block: int) -> int:
        return self.config.pages_per_block - int(self._write_ptr[block])

    def is_block_free(self, block: int) -> bool:
        """True when the block has never been programmed since its last erase."""
        return self._write_ptr[block] == 0

    @property
    def valid_counts(self) -> np.ndarray:
        """Per-block valid-page counts (read-only view for victim policies)."""
        return self._valid_count

    @property
    def invalid_counts(self) -> np.ndarray:
        return self._invalid_count

    @property
    def write_ptrs(self) -> np.ndarray:
        return self._write_ptr

    # -- operations ----------------------------------------------------------

    def read_page(self, ppn: int) -> None:
        """Read a page.  Reading FREE pages is rejected — it indicates an FTL bug."""
        self._check_ppn(ppn)
        if self._state[ppn] == _FREE:
            raise RuntimeError(f"read of unwritten (FREE) page ppn={ppn}")
        self.reads += 1

    def program_page(self, block: int) -> int:
        """Program the next sequential page of ``block``; return its ppn.

        Raises if the block is full — callers must allocate a new active
        block instead.
        """
        ptr = int(self._write_ptr[block])
        if ptr >= self.config.pages_per_block:
            raise RuntimeError(f"program on full block {block}")
        ppn = block * self.config.pages_per_block + ptr
        assert self._state[ppn] == _FREE, "sequential-program invariant broken"
        self._state[ppn] = _VALID
        self._write_ptr[block] = ptr + 1
        self._valid_count[block] += 1
        self.programs += 1
        return ppn

    def program_page_at(self, block: int, offset: int) -> int:
        """Program the page at a fixed ``offset`` of ``block``; return its ppn.

        Block-mapped and hybrid FTLs place pages at offsets equal to their
        logical in-block offset, which requires out-of-order programming —
        permitted on the SLC parts assumed by that literature [7].  After
        this call ``_write_ptr`` counts *programmed pages*, so a block must
        not mix :meth:`program_page` and :meth:`program_page_at`.
        """
        if not 0 <= offset < self.config.pages_per_block:
            raise IndexError(f"offset {offset} out of range")
        ppn = block * self.config.pages_per_block + offset
        if self._state[ppn] != _FREE:
            raise RuntimeError(f"program of non-FREE page ppn={ppn}")
        self._state[ppn] = _VALID
        self._write_ptr[block] += 1
        self._valid_count[block] += 1
        self.programs += 1
        return ppn

    def program_run_start(self, block: int, count: int) -> int:
        """Program ``count`` sequential pages of ``block``; return the
        first ppn (the run is ``[start, start + count)``).

        The slice-returning form of :meth:`program_run`, for callers that
        exploit the run's contiguity with slice assignments.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        ptr = int(self._write_ptr[block])
        if ptr + count > self.config.pages_per_block:
            raise RuntimeError(f"program_run overflows block {block}")
        lo = block * self.config.pages_per_block + ptr
        self._state[lo:lo + count] = _VALID
        self._write_ptr[block] = ptr + count
        self._valid_count[block] += count
        self.programs += count
        return lo

    def program_run(self, block: int, count: int) -> np.ndarray:
        """Program ``count`` sequential pages of ``block``; return their ppns.

        Vectorised batch variant of :meth:`program_page` for span writes.
        """
        lo = self.program_run_start(block, count)
        return np.arange(lo, lo + count, dtype=np.int64)

    def invalidate_run(self, start: int, count: int) -> None:
        """Invalidate ``count`` contiguous VALID pages starting at ``start``.

        The contiguous-run form of :meth:`invalidate_pages`: state flips
        are slice stores and per-block counts are scalar arithmetic, with
        no gather/scatter or bincount.  Whole-block cache placements make
        this the dominant invalidation shape.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        end = start + count - 1
        if not (0 <= start and end < self.config.total_pages):
            raise IndexError(f"run [{start}, {end}] out of range")
        sl = self._state[start:start + count]
        if (sl != _VALID).any():
            raise RuntimeError("invalidate_run on non-VALID page(s)")
        sl[:] = _INVALID
        ppb = self.config.pages_per_block
        first_b = start // ppb
        last_b = end // ppb
        if first_b == last_b:
            self._valid_count[first_b] -= count
            self._invalid_count[first_b] += count
            return
        for blk in range(first_b, last_b + 1):
            lo = max(start, blk * ppb)
            hi = min(end + 1, (blk + 1) * ppb)
            n = hi - lo
            self._valid_count[blk] -= n
            self._invalid_count[blk] += n

    def invalidate_pages(self, ppns: np.ndarray) -> None:
        """Vectorised invalidate of many VALID pages (may repeat blocks)."""
        n = int(ppns.size)
        if n == 0:
            return
        p0 = int(ppns[0])
        if int(ppns[-1]) - p0 == n - 1 and (
            n == 1 or np.array_equal(ppns, np.arange(p0, p0 + n, dtype=ppns.dtype))
        ):
            # Contiguous ascending run (block-aligned placements produce
            # these almost exclusively): slice stores beat fancy indexing.
            self.invalidate_run(p0, n)
            return
        if (self._state[ppns] != _VALID).any():
            raise RuntimeError("invalidate_pages on non-VALID page(s)")
        self._state[ppns] = _INVALID
        blocks = ppns // self.config.pages_per_block
        # bincount beats ufunc.at for the small repeat-heavy block lists
        # GC and trims produce.
        per_block = np.bincount(blocks)
        self._valid_count[: per_block.size] -= per_block
        self._invalid_count[: per_block.size] += per_block

    def read_pages(self, ppns: np.ndarray) -> None:
        """Vectorised read of many non-FREE pages."""
        if ppns.size == 0:
            return
        if (self._state[ppns] == _FREE).any():
            raise RuntimeError("read of unwritten (FREE) page in span")
        self.reads += int(ppns.size)

    def invalidate_page(self, ppn: int) -> None:
        """Mark a VALID page INVALID (e.g. its logical page was overwritten)."""
        self._check_ppn(ppn)
        if self._state[ppn] != _VALID:
            raise RuntimeError(f"invalidate of non-VALID page ppn={ppn} "
                               f"(state={PageState(self._state[ppn]).name})")
        block = self.block_of(ppn)
        self._state[ppn] = _INVALID
        self._valid_count[block] -= 1
        self._invalid_count[block] += 1

    def erase_block(self, block: int) -> None:
        """Erase a whole block: all pages return to FREE, wear count +1.

        Erasing a block that still holds VALID pages is rejected; the FTL
        must migrate them first.
        """
        if not 0 <= block < self.config.num_blocks:
            raise IndexError(f"block {block} out of range")
        if self._valid_count[block] != 0:
            raise RuntimeError(
                f"erase of block {block} with {self._valid_count[block]} valid pages"
            )
        lo = block * self.config.pages_per_block
        hi = lo + self.config.pages_per_block
        self._state[lo:hi] = _FREE
        self._write_ptr[block] = 0
        self._invalid_count[block] = 0
        self.erase_counts[block] += 1
        self.erases += 1

    def valid_ppns_in(self, block: int) -> list[int]:
        """Physical page numbers of all VALID pages in ``block``."""
        return self.valid_ppn_array(block).tolist()

    def valid_ppn_array(self, block: int) -> np.ndarray:
        """Ascending ppns of all VALID pages in ``block`` (batch GC path)."""
        lo = block * self.config.pages_per_block
        hi = lo + self.config.pages_per_block
        return lo + np.nonzero(self._state[lo:hi] == _VALID)[0]

    def check_invariants(self) -> None:
        """Verify the state arrays agree (used by property tests)."""
        ppb = self.config.pages_per_block
        states = self._state.reshape(self.config.num_blocks, ppb)
        valid = (states == _VALID).sum(axis=1)
        invalid = (states == _INVALID).sum(axis=1)
        used = (states != _FREE).sum(axis=1)
        if not np.array_equal(valid, self._valid_count):
            raise AssertionError("valid_count out of sync with page states")
        if not np.array_equal(invalid, self._invalid_count):
            raise AssertionError("invalid_count out of sync with page states")
        if not np.array_equal(used, self._write_ptr):
            raise AssertionError("write pointers out of sync with page states")
