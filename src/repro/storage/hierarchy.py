"""Assembly of the paper's three-tier storage stack (Fig. 2).

A :class:`StorageHierarchy` owns one shared :class:`VirtualClock` and the
three devices: DRAM (L1 cache), SSD (L2 cache) and HDD (index storage).
The SSD tier is optional so the same object expresses the paper's
one-level-cache baselines, and the index store can be placed on either the
HDD or a second SSD (the "1LC-SSD" configurations of Fig. 15/16/18).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.hdd.disk import SimulatedHDD
from repro.hdd.geometry import DiskGeometry
from repro.sim.clock import VirtualClock
from repro.storage.device import BlockDevice, DramModel

__all__ = ["HierarchyConfig", "StorageHierarchy"]


@dataclass
class HierarchyConfig:
    """Capacity and backing choices for a storage stack.

    ``index_on`` selects where the inverted-index files live ("hdd" or
    "ssd"), matching the paper's "HDD"/"SSD" legend entries.  ``ssd_cache``
    enables the L2 SSD cache tier ("2LC" vs "1LC").
    """

    memory_bytes: int = 512 * 1024**2
    ssd_cache: bool = True
    ssd_config: FlashConfig = field(default_factory=FlashConfig)
    index_on: str = "hdd"
    hdd_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    #: FlashConfig for an SSD-resident index store (index_on == "ssd").
    index_ssd_config: FlashConfig | None = None

    def __post_init__(self) -> None:
        if self.index_on not in ("hdd", "ssd"):
            raise ValueError(f"index_on must be 'hdd' or 'ssd', got {self.index_on!r}")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")


class StorageHierarchy:
    """Devices of one index server sharing a virtual clock.

    Pass an external ``clock`` to let several hierarchies (e.g. the
    shards of a concurrent cluster) share one simulated timeline, and a
    ``device_suffix`` (e.g. ``"#2"``) so their busy channels and kernel
    resources stay distinguishable.
    """

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        seed: int = 0,
        clock: VirtualClock | None = None,
        device_suffix: str = "",
    ) -> None:
        self.config = config or HierarchyConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self.device_suffix = device_suffix
        self.memory = DramModel(
            capacity_bytes=self.config.memory_bytes, clock=self.clock,
            name=f"dram{device_suffix}",
        )
        #: Channel CPU work is consumed on (scoring/merging in
        #: core.manager); charged nowhere — CPU attribution stays the
        #: response-time residual — but under a kernel it becomes a real
        #: contended resource.
        self.cpu_channel = f"cpu{device_suffix}"
        self.ssd: SimulatedSSD | None = None
        if self.config.ssd_cache:
            self.ssd = SimulatedSSD(
                config=self.config.ssd_config, clock=self.clock,
                name=f"ssd-cache{device_suffix}",
            )
        if self.config.index_on == "hdd":
            self.index_store: BlockDevice = SimulatedHDD(
                geometry=self.config.hdd_geometry, clock=self.clock,
                name=f"index-hdd{device_suffix}",
            )
        else:
            index_cfg = self.config.index_ssd_config or self.config.ssd_config
            self.index_store = SimulatedSSD(
                config=index_cfg, clock=self.clock,
                name=f"index-ssd{device_suffix}", ftl="page",
            )

    def attach_kernel(self, kernel, cpu_lanes: int = 1) -> None:
        """Register this hierarchy's devices as kernel service resources.

        Lane counts come from the devices themselves (``service_lanes``:
        NAND channels x planes for SSDs, 1 for the HDD's single actuator);
        DRAM gets ``cpu_lanes`` since a memory access occupies the core
        issuing it.  Also binds the kernel to the shared clock so device
        ``consume`` calls route through it inside tasks.
        """
        kernel.add_resource(self.memory.name, lanes=max(1, cpu_lanes))
        kernel.add_resource(self.cpu_channel, lanes=max(1, cpu_lanes))
        if self.ssd is not None:
            kernel.add_resource(self.ssd.name, lanes=self.ssd.service_lanes)
        kernel.add_resource(
            self.index_store.name,
            lanes=getattr(self.index_store, "service_lanes", 1),
        )
        if self.clock.kernel is not kernel:
            self.clock.bind_kernel(kernel)

    @property
    def levels(self) -> int:
        """2 when the SSD cache tier is present, else 1 (paper's 2LC/1LC)."""
        return 2 if self.ssd is not None else 1

    def attach_tracer(self, tracer) -> None:
        """Hook every device's accesses into a span tracer (repro.obs).

        Pass ``None`` to detach.  Device reads/writes then land as leaf
        spans nested under whatever span the caller holds open.  A
        disabled tracer normalizes to None so device hot paths stay bare.
        """
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.memory.tracer = tracer
        if self.ssd is not None:
            self.ssd.tracer = tracer
        self.index_store.tracer = tracer

    def attach_audit(self, audit) -> None:
        """Hook the flash devices' GC decisions into an audit log.

        Mirrors :meth:`attach_tracer`: pass ``None`` to detach, and a
        disabled audit log normalizes to None so the FTL hot paths keep
        a single attribute check.  Only flash devices take part — DRAM
        and HDD make no placement decisions worth auditing.
        """
        if audit is not None and not getattr(audit, "enabled", True):
            audit = None
        if self.ssd is not None:
            self.ssd.audit = audit
        if hasattr(self.index_store, "ftl"):
            self.index_store.audit = audit

    def describe(self) -> str:
        """Short configuration label in the paper's legend style."""
        cache = f"{self.levels}LC"
        index = "HDD" if self.config.index_on == "hdd" else "SSD"
        return f"{cache}-{index}"

    def busy_breakdown_us(self) -> dict[str, float]:
        """Busy time accumulated per device channel."""
        return {ch: self.clock.busy_us(ch) for ch in self.clock.channels()}
