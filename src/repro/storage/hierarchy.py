"""Assembly of the paper's three-tier storage stack (Fig. 2).

A :class:`StorageHierarchy` owns one shared :class:`VirtualClock` and the
three devices: DRAM (L1 cache), SSD (L2 cache) and HDD (index storage).
The SSD tier is optional so the same object expresses the paper's
one-level-cache baselines, and the index store can be placed on either the
HDD or a second SSD (the "1LC-SSD" configurations of Fig. 15/16/18).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.constants import FlashConfig
from repro.flash.ssd import SimulatedSSD
from repro.hdd.disk import SimulatedHDD
from repro.hdd.geometry import DiskGeometry
from repro.sim.clock import VirtualClock
from repro.storage.device import BlockDevice, DramModel

__all__ = ["HierarchyConfig", "StorageHierarchy"]


@dataclass
class HierarchyConfig:
    """Capacity and backing choices for a storage stack.

    ``index_on`` selects where the inverted-index files live ("hdd" or
    "ssd"), matching the paper's "HDD"/"SSD" legend entries.  ``ssd_cache``
    enables the L2 SSD cache tier ("2LC" vs "1LC").
    """

    memory_bytes: int = 512 * 1024**2
    ssd_cache: bool = True
    ssd_config: FlashConfig = field(default_factory=FlashConfig)
    index_on: str = "hdd"
    hdd_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    #: FlashConfig for an SSD-resident index store (index_on == "ssd").
    index_ssd_config: FlashConfig | None = None

    def __post_init__(self) -> None:
        if self.index_on not in ("hdd", "ssd"):
            raise ValueError(f"index_on must be 'hdd' or 'ssd', got {self.index_on!r}")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")


class StorageHierarchy:
    """Devices of one index server sharing a virtual clock."""

    def __init__(self, config: HierarchyConfig | None = None, seed: int = 0) -> None:
        self.config = config or HierarchyConfig()
        self.clock = VirtualClock()
        self.memory = DramModel(
            capacity_bytes=self.config.memory_bytes, clock=self.clock, name="dram"
        )
        self.ssd: SimulatedSSD | None = None
        if self.config.ssd_cache:
            self.ssd = SimulatedSSD(
                config=self.config.ssd_config, clock=self.clock, name="ssd-cache"
            )
        if self.config.index_on == "hdd":
            self.index_store: BlockDevice = SimulatedHDD(
                geometry=self.config.hdd_geometry, clock=self.clock, name="index-hdd"
            )
        else:
            index_cfg = self.config.index_ssd_config or self.config.ssd_config
            self.index_store = SimulatedSSD(
                config=index_cfg, clock=self.clock, name="index-ssd", ftl="page"
            )

    @property
    def levels(self) -> int:
        """2 when the SSD cache tier is present, else 1 (paper's 2LC/1LC)."""
        return 2 if self.ssd is not None else 1

    def attach_tracer(self, tracer) -> None:
        """Hook every device's accesses into a span tracer (repro.obs).

        Pass ``None`` to detach.  Device reads/writes then land as leaf
        spans nested under whatever span the caller holds open.  A
        disabled tracer normalizes to None so device hot paths stay bare.
        """
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.memory.tracer = tracer
        if self.ssd is not None:
            self.ssd.tracer = tracer
        self.index_store.tracer = tracer

    def attach_audit(self, audit) -> None:
        """Hook the flash devices' GC decisions into an audit log.

        Mirrors :meth:`attach_tracer`: pass ``None`` to detach, and a
        disabled audit log normalizes to None so the FTL hot paths keep
        a single attribute check.  Only flash devices take part — DRAM
        and HDD make no placement decisions worth auditing.
        """
        if audit is not None and not getattr(audit, "enabled", True):
            audit = None
        if self.ssd is not None:
            self.ssd.audit = audit
        if hasattr(self.index_store, "ftl"):
            self.index_store.audit = audit

    def describe(self) -> str:
        """Short configuration label in the paper's legend style."""
        cache = f"{self.levels}LC"
        index = "HDD" if self.config.index_on == "hdd" else "SSD"
        return f"{cache}-{index}"

    def busy_breakdown_us(self) -> dict[str, float]:
        """Busy time accumulated per device channel."""
        return {ch: self.clock.busy_us(ch) for ch in self.clock.channels()}
