"""Flash-aware buffer management (Section II.C of the paper).

The paper surveys three buffer-management schemes designed around flash's
asymmetric write cost and positions its own policies against them:

* **CFLRU** (Park et al. [13]) — a host page cache that evicts *clean*
  pages from a clean-first region before dirty ones, deferring writes;
* **LRU-WSR** (Jung et al. [14]) — LRU plus a second chance for dirty
  pages ("write sequence reordering"), so only cold dirty pages flush;
* **BPLRU** (Kim & Ahn [15]) — an SSD-internal write buffer that pads
  dirty pages into whole flash blocks and writes them sequentially.

:class:`HostPageBuffer` implements plain LRU, CFLRU and LRU-WSR behind
one write-back page-cache front-end usable on any block device;
:class:`BplruBuffer` implements the block-padding internal buffer for the
simulated SSD.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass

from repro.flash.constants import SECTOR_BYTES
from repro.flash.ssd import SimulatedSSD
from repro.storage.device import BlockDevice

__all__ = ["BufferPolicy", "BufferStats", "HostPageBuffer", "BplruBuffer"]


class BufferPolicy(str, enum.Enum):
    LRU = "lru"
    CFLRU = "cflru"
    LRU_WSR = "lru-wsr"


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evict_clean: int = 0
    second_chances: int = 0
    padding_reads: int = 0
    block_flushes: int = 0

    @property
    def hit_ratio(self) -> float:
        n = self.hits + self.misses
        return self.hits / n if n else 0.0


@dataclass
class _Page:
    dirty: bool = False
    cold: bool = False  # LRU-WSR's cold flag


class HostPageBuffer:
    """Write-back page cache over a block device.

    Reads and writes are absorbed at page granularity; evictions write
    dirty pages back to the device.  The three policies differ only in
    victim selection, which is exactly how the literature frames them.
    """

    def __init__(
        self,
        device: BlockDevice,
        capacity_pages: int,
        page_bytes: int = 2048,
        policy: BufferPolicy = BufferPolicy.LRU,
        clean_first_fraction: float = 0.25,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        if page_bytes <= 0 or page_bytes % SECTOR_BYTES:
            raise ValueError("page_bytes must be a positive multiple of 512")
        if not 0.0 < clean_first_fraction <= 1.0:
            raise ValueError("clean_first_fraction must be in (0, 1]")
        self.device = device
        self.capacity_pages = capacity_pages
        self.page_bytes = page_bytes
        self.policy = BufferPolicy(policy)
        self.clean_first_fraction = clean_first_fraction
        self._pages: OrderedDict[int, _Page] = OrderedDict()
        self.stats = BufferStats()

    # -- geometry ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"buffer({self.policy.value})+{self.device.name}"

    def _page_span(self, lba: int, nbytes: int) -> range:
        if lba < 0 or nbytes <= 0:
            raise ValueError(f"invalid request lba={lba} nbytes={nbytes}")
        start = lba * SECTOR_BYTES
        end = start + nbytes
        return range(start // self.page_bytes, (end - 1) // self.page_bytes + 1)

    def _page_lba(self, page_no: int) -> int:
        return page_no * (self.page_bytes // SECTOR_BYTES)

    # -- host interface ----------------------------------------------------------

    def read(self, lba: int, nbytes: int) -> float:
        latency = 0.0
        for page_no in self._page_span(lba, nbytes):
            page = self._pages.get(page_no)
            if page is not None:
                self._pages.move_to_end(page_no)
                self.stats.hits += 1
                continue
            self.stats.misses += 1
            latency += self.device.read(self._page_lba(page_no), self.page_bytes)
            latency += self._insert(page_no, dirty=False)
        return latency

    def write(self, lba: int, nbytes: int) -> float:
        latency = 0.0
        for page_no in self._page_span(lba, nbytes):
            page = self._pages.get(page_no)
            if page is not None:
                page.dirty = True
                page.cold = False  # re-referenced: hot again
                self._pages.move_to_end(page_no)
                self.stats.hits += 1
                continue
            self.stats.misses += 1
            latency += self._insert(page_no, dirty=True)
        return latency

    def trim(self, lba: int, nbytes: int) -> float:
        for page_no in self._page_span(lba, nbytes):
            self._pages.pop(page_no, None)
        return self.device.trim(lba, nbytes)

    def flush(self) -> float:
        """Write back every dirty page (shutdown / checkpoint)."""
        latency = 0.0
        for page_no, page in self._pages.items():
            if page.dirty:
                latency += self.device.write(self._page_lba(page_no), self.page_bytes)
                self.stats.writebacks += 1
                page.dirty = False
        return latency

    @property
    def dirty_pages(self) -> int:
        return sum(1 for p in self._pages.values() if p.dirty)

    def __len__(self) -> int:
        return len(self._pages)

    # -- internals --------------------------------------------------------------

    def _insert(self, page_no: int, dirty: bool) -> float:
        latency = 0.0
        while len(self._pages) >= self.capacity_pages:
            latency += self._evict_one()
        self._pages[page_no] = _Page(dirty=dirty)
        return latency

    def _evict_one(self) -> float:
        if self.policy is BufferPolicy.CFLRU:
            victim = self._cflru_victim()
        elif self.policy is BufferPolicy.LRU_WSR:
            victim = self._wsr_victim()
        else:
            victim = next(iter(self._pages))
        page = self._pages.pop(victim)
        if page.dirty:
            self.stats.writebacks += 1
            return self.device.write(self._page_lba(victim), self.page_bytes)
        self.stats.evict_clean += 1
        return 0.0

    def _cflru_victim(self) -> int:
        """First clean page within the clean-first region, else plain LRU."""
        window = max(1, int(self.capacity_pages * self.clean_first_fraction))
        for i, (page_no, page) in enumerate(self._pages.items()):
            if i >= window:
                break
            if not page.dirty:
                return page_no
        return next(iter(self._pages))

    def _wsr_victim(self) -> int:
        """LRU, but a hot dirty page gets one second chance (cold flag)."""
        guard = len(self._pages) + 1
        while guard:
            guard -= 1
            page_no, page = next(iter(self._pages.items()))
            if page.dirty and not page.cold:
                page.cold = True
                self._pages.move_to_end(page_no)
                self.stats.second_chances += 1
                continue
            return page_no
        return next(iter(self._pages))  # pragma: no cover - guard exit


class BplruBuffer:
    """Block-Padding LRU: the SSD-internal write buffer of [15].

    Dirty pages are grouped by erase block; the LRU *block* is flushed as
    one padded sequential block write (missing pages are first read from
    flash), which turns random small writes into switch-merge-friendly
    block writes.
    """

    def __init__(self, ssd: SimulatedSSD, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self.ssd = ssd
        self.capacity_pages = capacity_pages
        self.page_bytes = ssd.config.page_bytes
        self.pages_per_block = ssd.config.pages_per_block
        self._blocks: OrderedDict[int, set[int]] = OrderedDict()
        self._buffered = 0
        self.stats = BufferStats()

    @property
    def name(self) -> str:
        return f"bplru+{self.ssd.name}"

    def _page_span(self, lba: int, nbytes: int) -> range:
        if lba < 0 or nbytes <= 0:
            raise ValueError(f"invalid request lba={lba} nbytes={nbytes}")
        start = lba * SECTOR_BYTES
        end = start + nbytes
        return range(start // self.page_bytes, (end - 1) // self.page_bytes + 1)

    def write(self, lba: int, nbytes: int) -> float:
        latency = 0.0
        for lpn in self._page_span(lba, nbytes):
            block_no, off = divmod(lpn, self.pages_per_block)
            pages = self._blocks.get(block_no)
            if pages is None:
                pages = set()
                self._blocks[block_no] = pages
            if off in pages:
                self.stats.hits += 1
            else:
                pages.add(off)
                self._buffered += 1
                self.stats.misses += 1
            self._blocks.move_to_end(block_no)
            while self._buffered > self.capacity_pages:
                latency += self._flush_lru_block()
        return latency

    def read(self, lba: int, nbytes: int) -> float:
        """Reads pass through (buffered pages would be served from RAM,
        which costs ~nothing next to a flash read)."""
        return self.ssd.read(lba, nbytes)

    def trim(self, lba: int, nbytes: int) -> float:
        return self.ssd.trim(lba, nbytes)

    def flush(self) -> float:
        latency = 0.0
        while self._blocks:
            latency += self._flush_lru_block()
        return latency

    @property
    def buffered_pages(self) -> int:
        return self._buffered

    def _flush_lru_block(self) -> float:
        block_no, pages = self._blocks.popitem(last=False)
        self._buffered -= len(pages)
        latency = 0.0
        block_lba = block_no * self.pages_per_block * (self.page_bytes // SECTOR_BYTES)
        missing = self.pages_per_block - len(pages)
        if missing:
            # Padding: read the block's absent pages before rewriting.
            self.stats.padding_reads += missing
            latency += self.ssd.read(block_lba, self.page_bytes * self.pages_per_block)
        latency += self.ssd.write(block_lba, self.page_bytes * self.pages_per_block)
        self.stats.block_flushes += 1
        self.stats.writebacks += len(pages)
        return latency
