"""Storage device abstraction and hierarchy wiring.

Defines the :class:`~repro.storage.device.BlockDevice` protocol shared by
the DRAM, SSD and HDD models, and :class:`~repro.storage.hierarchy.
StorageHierarchy`, which assembles the paper's three-tier stack (memory L1
cache, SSD L2 cache, HDD index store) on one virtual clock.
"""

from repro.storage.device import BlockDevice, DramModel, NullDevice
from repro.storage.hierarchy import StorageHierarchy, HierarchyConfig

__all__ = [
    "BlockDevice",
    "DramModel",
    "NullDevice",
    "StorageHierarchy",
    "HierarchyConfig",
]
