"""Block-device protocol and the DRAM latency model.

All tiers speak the same interface — ``read``/``write``/``trim`` over
(lba, nbytes) returning microseconds — so the cache manager and workload
drivers are agnostic to what backs each level.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.sim.clock import VirtualClock
from repro.sim.counters import CounterSet

__all__ = ["BlockDevice", "DramModel", "NullDevice"]


@runtime_checkable
class BlockDevice(Protocol):
    """Minimal interface every storage tier implements."""

    name: str
    counters: CounterSet

    @property
    def capacity_bytes(self) -> int: ...

    def read(self, lba: int, nbytes: int) -> float: ...

    def write(self, lba: int, nbytes: int) -> float: ...

    def trim(self, lba: int, nbytes: int) -> float: ...


class DramModel:
    """Main-memory access cost model.

    Memory is not sector-addressed, but modelling it behind the same
    interface lets Table I's time costs (T1, T2, ...) fall out of uniform
    accounting.  Cost = fixed software overhead + bandwidth term.
    """

    def __init__(
        self,
        capacity_bytes: int = 2 * 1024**3,
        access_overhead_us: float = 0.2,
        bandwidth_gb_s: float = 10.0,
        clock: VirtualClock | None = None,
        name: str = "dram",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if bandwidth_gb_s <= 0:
            raise ValueError("bandwidth_gb_s must be positive")
        self._capacity = capacity_bytes
        self.access_overhead_us = access_overhead_us
        self.bandwidth_gb_s = bandwidth_gb_s
        self.clock = clock or VirtualClock()
        self.name = name
        self.counters = CounterSet()
        #: Optional span tracer (repro.obs); None keeps the hot path bare.
        self.tracer = None

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def _cost_us(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return self.access_overhead_us + nbytes / (self.bandwidth_gb_s * 1e3)

    def read(self, lba: int, nbytes: int) -> float:
        latency = self._cost_us(nbytes)
        self.counters.add("read_ops", nbytes)
        self.counters.add("access_time_us", latency)
        self.clock.consume(self.name, latency)
        if self.tracer is not None:
            now = self.clock.now_us
            self.tracer.record(f"{self.name}.read", now - latency, now,
                               nbytes=nbytes)
        return latency

    def write(self, lba: int, nbytes: int) -> float:
        latency = self._cost_us(nbytes)
        self.counters.add("write_ops", nbytes)
        self.counters.add("access_time_us", latency)
        self.clock.consume(self.name, latency)
        if self.tracer is not None:
            now = self.clock.now_us
            self.tracer.record(f"{self.name}.write", now - latency, now,
                               nbytes=nbytes)
        return latency

    def trim(self, lba: int, nbytes: int) -> float:
        return 0.0


class NullDevice:
    """A zero-latency, infinite device — useful as a test double."""

    def __init__(self, name: str = "null", capacity_bytes: int = 2**62) -> None:
        self.name = name
        self._capacity = capacity_bytes
        self.counters = CounterSet()
        self.tracer = None

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def read(self, lba: int, nbytes: int) -> float:
        self.counters.add("read_ops", nbytes)
        return 0.0

    def write(self, lba: int, nbytes: int) -> float:
        self.counters.add("write_ops", nbytes)
        return 0.0

    def trim(self, lba: int, nbytes: int) -> float:
        self.counters.add("trim_ops", nbytes)
        return 0.0
