"""Hot-path operation counters (host-side, zero simulated-time cost).

The profiler (:mod:`repro.obs.profiler`) attributes *wall-clock* time to
subsystems; these counters supply the denominator: how many of each
primitive operation the host executed.  Together they yield
``wall_ns_per_op`` — the scoreboard metric the raw-speed arc optimises
(fewer nanoseconds per posting decoded, per FTL map lookup, per LRU
node move).

Counting happens at the source with a plain attribute increment
(``HOT.ftl_map_lookups += 1``), cheap enough to stay unconditional.
The counters are host-side bookkeeping only: they never touch the
virtual clock or any simulated state, so reading or resetting them
cannot perturb simulated metrics.

This module lives at the top of the package *on purpose*: it imports
nothing, so the hot modules (``repro.core.lru``, ``repro.flash.ftl_*``,
``repro.engine.codec``, ``repro.sim.kernel``, ``repro.obs.instruments``)
can import it without creating a cycle through the heavy package
``__init__`` chains.  The public face is re-exported as
``repro.obs.HOT`` / ``repro.obs.HotCounters``.

Several counters reconcile exactly with existing simulation counters
(tested in ``tests/test_obs_profiler.py``):

* ``kernel_heap_pops`` equals :meth:`repro.sim.kernel.Kernel.run`'s
  handled-event count;
* ``histogram_records`` equals the summed ``count`` of every histogram
  recorded into;
* ``ftl_map_lookups`` covers every host read/write/trim an FTL serves
  (>= ``FtlStats`` host ops; GC relocations do not re-enter the host
  entry points).
"""

from __future__ import annotations

__all__ = ["HotCounters", "HOT"]


class HotCounters:
    """A bundle of monotonically increasing host-side op counts."""

    #: The counted operations, in scoreboard order.
    OPS = (
        "postings_decoded",      # postings materialised by codec/scoring
        "daat_advance_steps",    # DAAT driver advances + skip probes
        "ftl_map_lookups",       # FTL host read/write/trim translations
        "lru_node_moves",        # LruList touch/insert/pop recency ops
        "kernel_heap_pops",      # discrete-event loop events handled
        "histogram_records",     # obs histogram samples (obs self-cost)
    )

    __slots__ = OPS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for op in self.OPS:
            setattr(self, op, 0)

    def snapshot(self) -> dict[str, int]:
        """Current totals, cheap to diff (see :meth:`delta`)."""
        return {op: getattr(self, op) for op in self.OPS}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Ops performed since ``before`` (an earlier :meth:`snapshot`)."""
        return {op: getattr(self, op) - before.get(op, 0) for op in self.OPS}


#: The process-wide counter bundle every hot site increments.
HOT = HotCounters()
