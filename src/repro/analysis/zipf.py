"""Zipf-law fitting.

Section III cites the Zipf-like distribution of term access frequencies
[18]; the Fig. 3 bench verifies that the *measured* query stream actually
has that property by fitting the rank-frequency slope.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_zipf_exponent"]


def fit_zipf_exponent(frequencies: np.ndarray, head_fraction: float = 0.5) -> float:
    """Least-squares slope of log(freq) vs log(rank).

    Returns the Zipf exponent s (positive for a decaying distribution).
    Only the head of the ranking is fitted by default — the tail of any
    finite sample flattens into noise and biases the slope.
    """
    freqs = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    freqs = freqs[freqs > 0]
    if freqs.size < 3:
        raise ValueError("need at least 3 positive frequencies to fit")
    if not 0.0 < head_fraction <= 1.0:
        raise ValueError("head_fraction must be in (0, 1]")
    n = max(3, int(freqs.size * head_fraction))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(freqs[:n]), deg=1)
    return float(-slope)
