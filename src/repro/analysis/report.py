"""Markdown report generation for experiment results.

Turns :class:`~repro.workloads.retrieval.RunResult` collections into the
kind of comparison report EXPERIMENTS.md is built from, so the CLI (and
downstream users) can produce shareable summaries without hand-editing.
"""

from __future__ import annotations

from repro.workloads.retrieval import RunResult

__all__ = ["policy_comparison_report"]


def _pct(new: float, base: float) -> str:
    if base == 0:
        return "n/a"
    delta = (new / base - 1.0) * 100.0
    return f"{delta:+.1f}%"


def policy_comparison_report(
    results: dict[str, RunResult],
    baseline: str = "lru",
    title: str = "Cache policy comparison",
) -> str:
    """Render a markdown comparison of runs keyed by policy name.

    The ``baseline`` row anchors the relative columns (the paper reports
    everything relative to LRU).
    """
    if not results:
        raise ValueError("results must be non-empty")
    if baseline not in results:
        raise ValueError(f"baseline {baseline!r} missing from results")
    base = results[baseline]

    lines = [
        f"# {title}",
        "",
        f"{base.queries} queries per run; relative columns vs "
        f"`{baseline}`.",
        "",
        "| policy | hit ratio | response (ms) | Δ resp | qps | Δ qps "
        "| SSD erases | Δ erases |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name, r in results.items():
        hit = r.stats.combined_hit_ratio if r.stats else 0.0
        lines.append(
            f"| {name} | {hit:.1%} | {r.mean_response_ms:.2f} "
            f"| {_pct(r.mean_response_ms, base.mean_response_ms)} "
            f"| {r.throughput_qps:.1f} "
            f"| {_pct(r.throughput_qps, base.throughput_qps)} "
            f"| {r.ssd_erases} "
            f"| {_pct(r.ssd_erases, base.ssd_erases) if base.ssd_erases else 'n/a'} |"
        )
    lines += [
        "",
        "Paper reference points (vs LRU): CBLRU response −35.27%, "
        "throughput +55.29%, erasures −59.92%; CBSLRU −41.05%, +70.47%, "
        "−71.52%.",
        "",
    ]
    return "\n".join(lines)
