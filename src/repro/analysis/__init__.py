"""Analysis utilities: Zipf fitting, Fig. 3 distributions, table printing."""

from repro.analysis.zipf import fit_zipf_exponent
from repro.analysis.metrics import (
    term_access_frequency_series,
    utilization_rate_series,
)
from repro.analysis.report import policy_comparison_report
from repro.analysis.tables import format_table

__all__ = [
    "fit_zipf_exponent",
    "term_access_frequency_series",
    "utilization_rate_series",
    "format_table",
    "policy_comparison_report",
]
