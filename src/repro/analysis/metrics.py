"""Fig. 3's two distributions, measured from a query log and an index.

Fig. 3(a): inverted-list utilization rate, ranked descending.
Fig. 3(b): term access frequency, ranked descending, against list size.
"""

from __future__ import annotations

import numpy as np

from repro.engine.index import InvertedIndex
from repro.engine.querylog import QueryLog

__all__ = ["utilization_rate_series", "term_access_frequency_series"]


def utilization_rate_series(
    index: InvertedIndex, log: QueryLog | None = None
) -> np.ndarray:
    """Utilization rate (%) per term, ranked descending (Fig. 3a).

    With a log, only queried terms are included (what a measurement of a
    running engine would see); without one, the whole vocabulary.
    """
    if log is None:
        util = index.stats.utilization
    else:
        terms = sorted(log.term_frequencies())
        util = index.stats.utilization[np.array(terms, dtype=np.int64)]
    return np.sort(util)[::-1] * 100.0


def term_access_frequency_series(
    index: InvertedIndex, log: QueryLog
) -> tuple[np.ndarray, np.ndarray]:
    """(access frequency, list size bytes) per queried term, by descending
    frequency (Fig. 3b)."""
    freqs = log.term_frequencies()
    if not freqs:
        raise ValueError("query log references no terms")
    items = sorted(freqs.items(), key=lambda kv: -kv[1])
    term_ids = np.array([t for t, _ in items], dtype=np.int64)
    counts = np.array([c for _, c in items], dtype=np.int64)
    sizes = index.stats.doc_freqs[term_ids] * 8
    return counts, sizes
