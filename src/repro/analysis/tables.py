"""Plain-text table formatting for benchmark output.

The benches print paper-style tables to stdout; this keeps their
formatting consistent and the bench code free of string fiddling.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table."""
    if not headers:
        raise ValueError("headers must be non-empty")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
