"""Mechanical hard-disk simulator.

Replaces the paper's WDC WD3200AAJS test disk with a seek + rotation +
transfer latency model over a flat LBA space.  Random reads pay a
distance-dependent seek plus rotational latency; sequential reads stream at
the sustained transfer rate — the asymmetry that makes search-engine I/O
(random, skipped reads; Section III) slow on HDD and motivates the paper.
"""

from repro.hdd.geometry import DiskGeometry
from repro.hdd.disk import SimulatedHDD

__all__ = ["DiskGeometry", "SimulatedHDD"]
