"""Disk geometry and the analytic seek-time model.

Seek time follows the standard square-root model (Ruemmler & Wilkes):
``seek(d) = t2t + (full_stroke - t2t) * sqrt(d / d_max)`` for distance
``d`` in sectors, which captures the arm's accelerate/coast/settle phases
well enough for comparative studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DiskGeometry", "SECTOR_BYTES"]

SECTOR_BYTES = 512


@dataclass(frozen=True)
class DiskGeometry:
    """Parameters of a simulated mechanical disk.

    Defaults are datasheet-class numbers for the paper's WDC WD3200AAJS
    (7200 rpm desktop drive, ~8.9 ms average seek, ~100 MB/s sustained).
    """

    capacity_bytes: int = 320 * 10**9
    rpm: int = 7200
    track_to_track_seek_ms: float = 2.0
    full_stroke_seek_ms: float = 21.0
    average_seek_ms: float = 8.9
    sustained_transfer_mb_s: float = 100.0
    #: request-size-independent controller/command overhead
    controller_overhead_us: float = 30.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")
        if not 0 <= self.track_to_track_seek_ms <= self.full_stroke_seek_ms:
            raise ValueError("need 0 <= track_to_track <= full_stroke seek")
        if self.sustained_transfer_mb_s <= 0:
            raise ValueError("transfer rate must be positive")

    @property
    def num_sectors(self) -> int:
        return self.capacity_bytes // SECTOR_BYTES

    @property
    def rotation_period_us(self) -> float:
        """Time of one full platter revolution."""
        return 60.0 / self.rpm * 1e6

    @property
    def mean_rotational_latency_us(self) -> float:
        """Expected wait for the target sector: half a revolution."""
        return self.rotation_period_us / 2.0

    def seek_time_us(self, distance_sectors: int) -> float:
        """Seek time for an arm move of ``distance_sectors``.

        Zero distance means the head is already on the right track — only
        settle-free track-following, modelled as zero seek.
        """
        if distance_sectors < 0:
            raise ValueError("seek distance cannot be negative")
        if distance_sectors == 0:
            return 0.0
        frac = min(1.0, distance_sectors / self.num_sectors)
        t2t = self.track_to_track_seek_ms
        full = self.full_stroke_seek_ms
        return (t2t + (full - t2t) * math.sqrt(frac)) * 1000.0

    def transfer_time_us(self, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` at the sustained rate."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return nbytes / (self.sustained_transfer_mb_s * 1e6) * 1e6
