"""Sector-addressed HDD device model.

Tracks head position so that sequential requests stream while random
requests pay seek + rotational latency.  Deterministic by default (expected
half-rotation); pass an ``rng`` for sampled rotational delays when latency
*distributions* matter (e.g. trace studies).
"""

from __future__ import annotations

import numpy as np

from repro.hdd.geometry import SECTOR_BYTES, DiskGeometry
from repro.sim.clock import VirtualClock
from repro.sim.counters import CounterSet

__all__ = ["SimulatedHDD"]

#: Requests that continue within this many sectors of the previous request's
#: end are treated as sequential (track buffer / read-ahead absorbs them).
_SEQUENTIAL_SLACK_SECTORS = 256


class SimulatedHDD:
    """A mechanical disk with positional state.

    Implements the same device interface as
    :class:`~repro.flash.ssd.SimulatedSSD`: ``read``/``write``/``trim``
    returning microseconds of service time charged to the shared clock.
    """

    def __init__(
        self,
        geometry: DiskGeometry | None = None,
        clock: VirtualClock | None = None,
        rng: np.random.Generator | None = None,
        name: str = "hdd",
    ) -> None:
        self.geometry = geometry or DiskGeometry()
        self.clock = clock or VirtualClock()
        self.rng = rng
        self.name = name
        self.counters = CounterSet()
        #: Optional span tracer (repro.obs); None keeps the hot path bare.
        self.tracer = None
        self._head_lba = 0

    @property
    def service_lanes(self) -> int:
        """A single actuator: the kernel queue *is* the seek queue."""
        return 1

    @property
    def capacity_bytes(self) -> int:
        return self.geometry.capacity_bytes

    @property
    def num_sectors(self) -> int:
        return self.geometry.num_sectors

    # -- latency model ---------------------------------------------------------

    def _service_time_us(self, lba: int, nbytes: int) -> float:
        if lba < 0 or nbytes <= 0:
            raise ValueError(f"invalid request lba={lba} nbytes={nbytes}")
        if lba * SECTOR_BYTES + nbytes > self.capacity_bytes:
            raise ValueError("request exceeds disk capacity")
        geo = self.geometry
        distance = abs(lba - self._head_lba)
        latency = geo.controller_overhead_us
        if distance > _SEQUENTIAL_SLACK_SECTORS:
            latency += geo.seek_time_us(distance)
            if self.rng is None:
                latency += geo.mean_rotational_latency_us
            else:
                latency += float(self.rng.uniform(0.0, geo.rotation_period_us))
            self.counters.add("seeks", distance)
        latency += geo.transfer_time_us(nbytes)
        self._head_lba = lba + -(-nbytes // SECTOR_BYTES)
        return latency

    # -- host I/O ------------------------------------------------------------------

    def read(self, lba: int, nbytes: int) -> float:
        """Read ``nbytes`` at sector ``lba``; returns service time in us."""
        latency = self._service_time_us(lba, nbytes)
        self.counters.add("read_ops", nbytes)
        self.counters.add("access_time_us", latency)
        self.clock.consume(self.name, latency)
        if self.tracer is not None:
            now = self.clock.now_us
            self.tracer.record(f"{self.name}.read", now - latency, now,
                               lba=lba, nbytes=nbytes)
        return latency

    def write(self, lba: int, nbytes: int) -> float:
        """Write ``nbytes`` at sector ``lba``; returns service time in us."""
        latency = self._service_time_us(lba, nbytes)
        self.counters.add("write_ops", nbytes)
        self.counters.add("access_time_us", latency)
        self.clock.consume(self.name, latency)
        if self.tracer is not None:
            now = self.clock.now_us
            self.tracer.record(f"{self.name}.write", now - latency, now,
                               lba=lba, nbytes=nbytes)
        return latency

    def trim(self, lba: int, nbytes: int) -> float:
        """TRIM is a no-op on mechanical disks; kept for interface parity."""
        self.counters.add("trim_ops", nbytes)
        return 0.0

    # -- reporting -----------------------------------------------------------------

    @property
    def mean_access_time_us(self) -> float:
        return self.counters["access_time_us"].mean

    def reset_counters(self) -> None:
        self.counters.reset()
